package tv

import (
	"fmt"

	"replayopt/internal/lir"
)

// VerifyStrict runs lir.VerifyIR (structure, edge symmetry, dominance) and
// then enforces per-Op typing and memory-op legality. One tolerated
// irregularity, inherited from BuildSSA: an integer-constant zero is the
// placeholder for values on never-taken paths, so an OpConstInt argument is
// accepted where a float or reference is otherwise required.
func VerifyStrict(f *lir.Function) error {
	if err := lir.VerifyIR(f); err != nil {
		return err
	}
	for _, b := range f.Blocks {
		for _, p := range b.Phis {
			if err := checkPhi(p, b); err != nil {
				return err
			}
		}
		for _, v := range b.Insns {
			if v.Block != b {
				return fmt.Errorf("tv-strict: v%d (%s) in b%d has Block pointer b%d",
					v.ID, v.Op, b.ID, blockID(v.Block))
			}
			if err := checkValue(v); err != nil {
				return err
			}
		}
	}
	return nil
}

func blockID(b *lir.Block) int {
	if b == nil {
		return -1
	}
	return b.ID
}

// loose reports whether a may stand where t is required: exact type match or
// the BuildSSA constant-zero placeholder.
func loose(a *lir.Value, t lir.Type) bool {
	return a.Type == t || placeholderish(a, map[*lir.Value]bool{})
}

// placeholderish reports whether a value is BuildSSA's never-taken-path
// placeholder (an integer constant) or a phi merging only placeholders —
// the builder threads the zero placeholder through join points, so the
// tolerance must follow phi chains. A phi cycle with no other input can only
// carry the placeholder, so cycles count as placeholders too.
func placeholderish(v *lir.Value, seen map[*lir.Value]bool) bool {
	if v.Op == lir.OpConstInt {
		return true
	}
	if v.Op != lir.OpPhi || v.Type != lir.TInt {
		return false
	}
	if seen[v] {
		return true
	}
	seen[v] = true
	for _, a := range v.Args {
		if !placeholderish(a, seen) {
			return false
		}
	}
	return true
}

// checkPhi enforces only voidness on phi arguments, not types: dex registers
// are untyped and BuildSSA types a phi by its dominant use, so a merge point
// legitimately mixes types when one path's value is never consumed (the
// never-taken placeholder, a dead-path call result). Type discipline is
// enforced where values are used, per checkValue.
func checkPhi(p *lir.Value, b *lir.Block) error {
	if p.Type == lir.TVoid {
		return fmt.Errorf("tv-strict: phi v%d in b%d is void", p.ID, b.ID)
	}
	for i, a := range p.Args {
		if a.Type == lir.TVoid {
			return fmt.Errorf("tv-strict: phi v%d arg %d is the void value v%d (%s)", p.ID, i, a.ID, a.Op)
		}
	}
	return nil
}

// sig describes an op's typing: expected arg types (TVoid in want = any
// non-void) and the required result type (res=TVoid means void-only;
// anyRes ops skip the result check).
type sig struct {
	want   []lir.Type
	res    lir.Type
	anyRes bool
}

var sigs = map[lir.Op]sig{
	lir.OpConstInt:    {want: []lir.Type{}, res: lir.TInt},
	lir.OpConstFloat:  {want: []lir.Type{}, res: lir.TFloat},
	lir.OpAdd:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpSub:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpMul:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpDiv:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpRem:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpAnd:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpOr:          {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpXor:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpShl:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpShr:         {want: []lir.Type{lir.TInt, lir.TInt}, res: lir.TInt},
	lir.OpNeg:         {want: []lir.Type{lir.TInt}, res: lir.TInt},
	lir.OpFAdd:        {want: []lir.Type{lir.TFloat, lir.TFloat}, res: lir.TFloat},
	lir.OpFSub:        {want: []lir.Type{lir.TFloat, lir.TFloat}, res: lir.TFloat},
	lir.OpFMul:        {want: []lir.Type{lir.TFloat, lir.TFloat}, res: lir.TFloat},
	lir.OpFDiv:        {want: []lir.Type{lir.TFloat, lir.TFloat}, res: lir.TFloat},
	lir.OpFNeg:        {want: []lir.Type{lir.TFloat}, res: lir.TFloat},
	lir.OpI2F:         {want: []lir.Type{lir.TInt}, res: lir.TFloat},
	lir.OpF2I:         {want: []lir.Type{lir.TFloat}, res: lir.TInt},
	lir.OpFCmp:        {want: []lir.Type{lir.TFloat, lir.TFloat}, res: lir.TInt},
	lir.OpArrLen:      {want: []lir.Type{lir.TRef}, res: lir.TInt},
	lir.OpBoundsCheck: {want: []lir.Type{lir.TRef, lir.TInt}, res: lir.TVoid},
	lir.OpArrLoad:     {want: []lir.Type{lir.TRef, lir.TInt}, anyRes: true},
	lir.OpArrStore:    {want: []lir.Type{lir.TRef, lir.TInt, lir.TVoid}, res: lir.TVoid},
	lir.OpFieldLoad:   {want: []lir.Type{lir.TRef}, anyRes: true},
	lir.OpFieldStore:  {want: []lir.Type{lir.TRef, lir.TVoid}, res: lir.TVoid},
	lir.OpStaticLoad:  {want: []lir.Type{}, anyRes: true},
	lir.OpStaticStore: {want: []lir.Type{lir.TVoid}, res: lir.TVoid},
	lir.OpNewArray:    {want: []lir.Type{lir.TInt}, res: lir.TRef},
	lir.OpNewObject:   {want: []lir.Type{}, res: lir.TRef},
	lir.OpClassOf:     {want: []lir.Type{lir.TRef}, res: lir.TInt},
	lir.OpGCCheck:     {want: []lir.Type{}, res: lir.TVoid},
	lir.OpJump:        {want: []lir.Type{}, res: lir.TVoid},
}

func checkValue(v *lir.Value) error {
	// Ops with variable arity or fully dynamic typing.
	switch v.Op {
	case lir.OpParam:
		if v.Type == lir.TVoid {
			return fmt.Errorf("tv-strict: v%d param is void", v.ID)
		}
		return checkArity(v, 0)
	case lir.OpCallStatic, lir.OpCallNative, lir.OpIntrinsic:
		return checkNonVoidArgs(v)
	case lir.OpCallVirtual:
		if len(v.Args) == 0 {
			return fmt.Errorf("tv-strict: v%d callvirt has no receiver", v.ID)
		}
		if !loose(v.Args[0], lir.TRef) {
			return fmt.Errorf("tv-strict: v%d callvirt receiver has type %s", v.ID, v.Args[0].Type)
		}
		return checkNonVoidArgs(v)
	case lir.OpBranch:
		if err := checkArity(v, 2); err != nil {
			return err
		}
		if v.Type != lir.TVoid {
			return fmt.Errorf("tv-strict: v%d branch is non-void", v.ID)
		}
		return checkNonVoidArgs(v)
	case lir.OpReturn:
		if len(v.Args) > 1 {
			return fmt.Errorf("tv-strict: v%d return has %d args", v.ID, len(v.Args))
		}
		return checkNonVoidArgs(v)
	case lir.OpThrow:
		if err := checkArity(v, 1); err != nil {
			return err
		}
		return checkNonVoidArgs(v)
	}
	s, ok := sigs[v.Op]
	if !ok {
		return fmt.Errorf("tv-strict: v%d has unknown op %s", v.ID, v.Op)
	}
	if err := checkArity(v, len(s.want)); err != nil {
		return err
	}
	for i, t := range s.want {
		a := v.Args[i]
		if a.Type == lir.TVoid {
			return fmt.Errorf("tv-strict: v%d (%s) arg %d is the void value v%d (%s)", v.ID, v.Op, i, a.ID, a.Op)
		}
		if t == lir.TVoid {
			continue // any non-void (store payloads, load results)
		}
		if !loose(a, t) {
			return fmt.Errorf("tv-strict: v%d (%s) arg %d has type %s, want %s", v.ID, v.Op, i, a.Type, t)
		}
	}
	if !s.anyRes && v.Type != s.res {
		return fmt.Errorf("tv-strict: v%d (%s) has result type %s, want %s", v.ID, v.Op, v.Type, s.res)
	}
	if s.anyRes && v.Type == lir.TVoid {
		return fmt.Errorf("tv-strict: v%d (%s) has void result", v.ID, v.Op)
	}
	return nil
}

func checkArity(v *lir.Value, n int) error {
	if len(v.Args) != n {
		return fmt.Errorf("tv-strict: v%d (%s) has %d args, want %d", v.ID, v.Op, len(v.Args), n)
	}
	return nil
}

func checkNonVoidArgs(v *lir.Value) error {
	for i, a := range v.Args {
		if a.Type == lir.TVoid {
			return fmt.Errorf("tv-strict: v%d (%s) arg %d is the void value v%d (%s)", v.ID, v.Op, i, a.ID, a.Op)
		}
	}
	return nil
}
