package tv

import (
	"replayopt/internal/lir"
)

// MiscompilePassName is the registry name of the deliberately broken pass.
const MiscompilePassName = "tvbreak"

// MiscompilePass returns a deliberately miscompiling pass for validator and
// GA drills: it skews the first integer store found in a block that
// dominates every function exit by +1. The mutation is chosen so that it is
// (a) statically provable — the stored value becomes old+1 in code that runs
// on every terminating execution, exactly the disprover's pattern — and
// (b) dynamically persistent: no legitimate pass un-adds a constant, so the
// wrong value survives to the verification map. Register it only through
// lir.RegisterForTesting; it must never reach the real catalog.
func MiscompilePass() *lir.PassInfo {
	return &lir.PassInfo{
		Name:   MiscompilePassName,
		Doc:    "test-only: skew the first always-executed integer store by +1",
		Unsafe: true,
		Run: func(f *lir.Function, _ *lir.PassContext, _ map[string]int) error {
			skewFirstStore(f)
			return nil
		},
	}
}

// skewFirstStore performs the mutation; it reports whether it changed
// anything (no qualifying store leaves the function untouched).
func skewFirstStore(f *lir.Function) bool {
	d := dominatorsOf(f)
	for _, b := range f.Blocks {
		if !d.reach[b] || !dominatesAllExits(f, d, b) {
			continue
		}
		for i, v := range b.Insns {
			var argIdx int
			switch v.Op {
			case lir.OpArrStore:
				argIdx = 2
			case lir.OpFieldStore:
				argIdx = 1
			case lir.OpStaticStore:
				argIdx = 0
			default:
				continue
			}
			old := v.Args[argIdx]
			if old.Type != lir.TInt {
				continue
			}
			one := f.NewValue(lir.OpConstInt, lir.TInt)
			one.Imm = 1
			skew := f.NewValue(lir.OpAdd, lir.TInt, old, one)
			one.Block, skew.Block = b, b
			b.Insns = append(b.Insns[:i:i], append([]*lir.Value{one, skew}, b.Insns[i:]...)...)
			v.Args[argIdx] = skew
			return true
		}
	}
	return false
}
