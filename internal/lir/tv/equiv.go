package tv

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"replayopt/internal/lir"
)

// Validate proves (or fails to prove) that after is behaviorally equivalent
// to before, where after = pass(before). The proof strategy:
//
//   - Pair the two CFGs by lockstep traversal from the entries (a
//     bisimulation over successor positions). Passes that restructure the
//     CFG break the pairing and land on Unverified — honest, since following
//     them needs a per-pass cutpoint mapping this validator does not have.
//   - Hash every value into a canonical symbolic expression: constants fold
//     through the same lir.FoldInt/FoldFloat the passes use, associative and
//     commutative integer chains flatten into sorted multisets, identities
//     (x+0, x*1, x^0, ...) normalize away, and loads take memory-state
//     tokens positioned by the observable prefix of their block (with exact
//     same-location store-to-load forwarding, invalidated by any other store
//     or call).
//   - Per block pair, the observable sequences (stores, calls, allocations)
//     must match op-for-op and argument-hash-for-argument-hash, terminator
//     arguments must match, non-trivial phis must match positionally with
//     per-predecessor argument equality, and the function-wide sets of
//     trap-risky operations (non-constant division, bounds checks) must be
//     preserved exactly.
//
// Any check the validator cannot discharge yields Unverified. Rejected is
// reserved for proof of difference: two paired observable (or returned)
// values that reduce to distinct integer constants, or differ by a nonzero
// additive constant, in blocks that dominate every function exit — code that
// runs on every terminating execution. Floats are never disproved (NaN and
// rounding make "different bits" an unsound argument).
func Validate(before, after *lir.Function, traits lir.Traits) (Verdict, string) {
	e := &equiv{before: newSide(before), after: newSide(after), traits: traits}
	return e.run()
}

// side is one function plus its hashing state.
type side struct {
	fn *lir.Function
	// pairID[b] is the index of b's block pair, set during pairing.
	pairID map[*lir.Block]int
	// memtok positions loads in their block's observable prefix.
	memtok map[*lir.Value]string
	// forward maps a load to the value a same-block same-location store
	// provably wrote.
	forward map[*lir.Value]*lir.Value
	// phitok names non-trivial phis positionally within their pair.
	phitok map[*lir.Value]string
	// live marks values whose hashes can enter a comparison; dead phis are
	// excluded from positional pairing (dce deletes them on one side only).
	live map[*lir.Value]bool
	// hashes memoizes canonical expression strings.
	hashes map[*lir.Value]string
	// busy guards against cycles through phis during hashing.
	busy map[*lir.Value]bool
	// flat records the flattened form of associative chains for the
	// disprover.
	flat map[*lir.Value]flatExpr
}

// flatExpr is a flattened associative/commutative integer chain.
type flatExpr struct {
	op     lir.Op
	cnst   int64
	leaves []string // sorted
}

func newSide(f *lir.Function) *side {
	return &side{
		fn:      f,
		pairID:  map[*lir.Block]int{},
		memtok:  map[*lir.Value]string{},
		forward: map[*lir.Value]*lir.Value{},
		phitok:  map[*lir.Value]string{},
		hashes:  map[*lir.Value]string{},
		busy:    map[*lir.Value]bool{},
		flat:    map[*lir.Value]flatExpr{},
	}
}

type blockPair struct {
	b, a *lir.Block
}

type equiv struct {
	before, after *side
	traits        lir.Traits
	pairs         []blockPair
}

// unverified wraps a reason, flagging the anomaly of a pass that reshaped
// the CFG without declaring the CFG trait.
func (e *equiv) unverified(cfgChange bool, format string, args ...any) (Verdict, string) {
	reason := fmt.Sprintf(format, args...)
	if cfgChange && !e.traits.CFG {
		reason = "anomaly: undeclared CFG change: " + reason
	}
	return Unverified, reason
}

func (e *equiv) run() (Verdict, string) {
	if len(e.before.fn.Blocks) == 0 || len(e.after.fn.Blocks) == 0 {
		return Unverified, "empty function"
	}
	if v, reason, ok := e.pair(); !ok {
		return v, reason
	}
	e.before.indexMemory()
	e.after.indexMemory()
	e.before.computeLive()
	e.after.computeLive()
	// Phi tokens: start by assuming every phi is non-trivial, then collapse
	// phis whose (non-self) arguments all hash alike, re-assign positional
	// tokens, and iterate to a fixpoint. This mirrors prunePhis, so a side
	// that kept a trivial phi and a side that removed it still line up.
	for round := 0; ; round++ {
		e.before.assignPhiTokens()
		e.after.assignPhiTokens()
		changedB := e.before.collapsePhis()
		changedA := e.after.collapsePhis()
		if (!changedB && !changedA) || round > 8 {
			break
		}
		e.before.resetHashes()
		e.after.resetHashes()
	}
	e.before.assignPhiTokens()
	e.after.assignPhiTokens()
	e.before.resetHashes()
	e.after.resetHashes()

	// Structural checks first; value mismatches are collected for the
	// disprover only if everything structural lines up.
	type mismatch struct {
		pair   int
		what   string
		vb, va *lir.Value // the differing argument values
	}
	var diffs []mismatch
	for pid, p := range e.pairs {
		// Non-trivial phis must correspond positionally with
		// per-predecessor argument equality.
		pb, pa := nontrivialPhis(e.before, p.b), nontrivialPhis(e.after, p.a)
		if len(pb) != len(pa) {
			return e.unverified(false, "pair %d: %d vs %d non-trivial phis", pid, len(pb), len(pa))
		}
		for k := range pb {
			if v, reason, ok := e.checkPhiArgs(pid, p, pb[k], pa[k]); !ok {
				return v, reason
			}
		}
		// Observable sequences.
		ob, oa := observables(p.b), observables(p.a)
		if len(ob) != len(oa) {
			return e.unverified(false, "pair %d: %d vs %d observable ops", pid, len(ob), len(oa))
		}
		for k := range ob {
			vb, va := ob[k], oa[k]
			if vb.Op != va.Op || vb.Slot != va.Slot || vb.Sym != va.Sym {
				return e.unverified(false, "pair %d observable %d: %s/slot%d vs %s/slot%d",
					pid, k, vb.Op, vb.Slot, va.Op, va.Slot)
			}
			if len(vb.Args) != len(va.Args) {
				return e.unverified(false, "pair %d observable %d: arg count %d vs %d", pid, k, len(vb.Args), len(va.Args))
			}
			for i := range vb.Args {
				if e.before.hash(vb.Args[i]) != e.after.hash(va.Args[i]) {
					diffs = append(diffs, mismatch{pid, fmt.Sprintf("%s arg %d", vb.Op, i), vb.Args[i], va.Args[i]})
				}
			}
		}
		// Terminator arguments. Branch condition divergence only redirects
		// control flow — unprovable either way — so it is never disproved.
		tb, ta := p.b.Term(), p.a.Term()
		if len(tb.Args) != len(ta.Args) {
			return e.unverified(false, "pair %d: terminator arg count %d vs %d", pid, len(tb.Args), len(ta.Args))
		}
		for i := range tb.Args {
			if e.before.hash(tb.Args[i]) != e.after.hash(ta.Args[i]) {
				if tb.Op == lir.OpBranch {
					return e.unverified(false, "pair %d: branch argument %d diverges", pid, i)
				}
				diffs = append(diffs, mismatch{pid, fmt.Sprintf("%s arg %d", tb.Op, i), tb.Args[i], ta.Args[i]})
			}
		}
	}
	// Trap preservation: the multiset of potentially-trapping operations
	// (as canonical hashes, function-wide sets so code motion and GVN-style
	// dedup pass) must be identical — removing a check that might have
	// fired, or adding a new trap, both change behavior unprovably.
	trapB, trapA := e.before.trapSet(), e.after.trapSet()
	if !sameStringSet(trapB, trapA) {
		return e.unverified(false, "trap-risky op set changed (%d vs %d distinct)", len(trapB), len(trapA))
	}

	if len(diffs) == 0 {
		return Verified, ""
	}
	// Disprover: a paired value difference is a proven miscompile only when
	// the values are provably unequal and the block pair dominates every
	// exit on both sides (the difference manifests on every terminating
	// run).
	domB := dominatorsOf(e.before.fn)
	domA := dominatorsOf(e.after.fn)
	for _, d := range diffs {
		p := e.pairs[d.pair]
		if !dominatesAllExits(e.before.fn, domB, p.b) || !dominatesAllExits(e.after.fn, domA, p.a) {
			continue
		}
		if why, ok := e.disprove(d.vb, d.va); ok {
			return Rejected, fmt.Sprintf("pair %d %s: %s", d.pair, d.what, why)
		}
	}
	return Unverified, fmt.Sprintf("%d paired value(s) could not be proven equal (first: pair %d %s)",
		len(diffs), diffs[0].pair, diffs[0].what)
}

// pair builds the lockstep CFG bisimulation.
func (e *equiv) pair() (Verdict, string, bool) {
	fwd := map[*lir.Block]*lir.Block{}
	bwd := map[*lir.Block]*lir.Block{}
	var queue []blockPair
	push := func(b, a *lir.Block) (Verdict, string, bool) {
		if fb, ok := fwd[b]; ok {
			if fb != a {
				v, r := e.unverified(true, "block b%d pairs with both b%d and b%d", b.ID, fb.ID, a.ID)
				return v, r, false
			}
			return 0, "", true
		}
		if ba, ok := bwd[a]; ok && ba != b {
			v, r := e.unverified(true, "block b%d pairs with both b%d and b%d", a.ID, ba.ID, b.ID)
			return v, r, false
		}
		fwd[b], bwd[a] = a, b
		e.before.pairID[b] = len(e.pairs)
		e.after.pairID[a] = len(e.pairs)
		pr := blockPair{b, a}
		e.pairs = append(e.pairs, pr)
		queue = append(queue, pr)
		return 0, "", true
	}
	if v, r, ok := push(e.before.fn.Blocks[0], e.after.fn.Blocks[0]); !ok {
		return v, r, false
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		tb, ta := p.b.Term(), p.a.Term()
		if tb == nil || ta == nil {
			v, r := e.unverified(false, "block b%d/b%d missing terminator", p.b.ID, p.a.ID)
			return v, r, false
		}
		if tb.Op != ta.Op {
			v, r := e.unverified(true, "terminator %s vs %s at b%d/b%d", tb.Op, ta.Op, p.b.ID, p.a.ID)
			return v, r, false
		}
		if tb.Op == lir.OpBranch && tb.Cond != ta.Cond {
			v, r := e.unverified(false, "branch condition %s vs %s at b%d/b%d", tb.Cond, ta.Cond, p.b.ID, p.a.ID)
			return v, r, false
		}
		if len(p.b.Succs) != len(p.a.Succs) {
			v, r := e.unverified(true, "successor count %d vs %d at b%d/b%d", len(p.b.Succs), len(p.a.Succs), p.b.ID, p.a.ID)
			return v, r, false
		}
		for i := range p.b.Succs {
			if v, r, ok := push(p.b.Succs[i], p.a.Succs[i]); !ok {
				return v, r, false
			}
		}
	}
	return 0, "", true
}

// checkPhiArgs verifies one paired phi predecessor-wise. Predecessor pairing
// follows the block pairing; when a predecessor appears several times in
// Preds, the k-th occurrence on one side pairs with the k-th on the other —
// if the k-th occurrences disagree hash-wise the result is Unverified (the
// positional assumption cannot be trusted for a proof either way).
func (e *equiv) checkPhiArgs(pid int, p blockPair, phiB, phiA *lir.Value) (Verdict, string, bool) {
	// Occurrence-indexed args per paired predecessor.
	argsAt := func(s *side, b *lir.Block, phi *lir.Value) map[int][]string {
		m := map[int][]string{}
		for i, pred := range b.Preds {
			ppid, ok := s.pairID[pred]
			if !ok {
				continue // unreachable or unpaired pred: ignore
			}
			if i < len(phi.Args) {
				m[ppid] = append(m[ppid], s.hash(phi.Args[i]))
			}
		}
		return m
	}
	mb := argsAt(e.before, p.b, phiB)
	ma := argsAt(e.after, p.a, phiA)
	if len(mb) != len(ma) {
		v, r := e.unverified(false, "pair %d phi: predecessor sets differ", pid)
		return v, r, false
	}
	for ppid, hb := range mb {
		ha, ok := ma[ppid]
		if !ok || len(ha) != len(hb) {
			v, r := e.unverified(false, "pair %d phi: predecessor pair %d occurrence mismatch", pid, ppid)
			return v, r, false
		}
		for k := range hb {
			if hb[k] != ha[k] {
				v, r := e.unverified(false, "pair %d phi: argument from predecessor pair %d differs", pid, ppid)
				return v, r, false
			}
		}
	}
	return 0, "", true
}

// disprove reports a proof that vb (before) and va (after) compute different
// values: distinct integer constants, or flattened add/xor chains over
// identical leaves with different constant parts (x+c1 != x+c2 and
// x^c1 != x^c2 for c1 != c2 in two's complement).
func (e *equiv) disprove(vb, va *lir.Value) (string, bool) {
	hb, ha := e.before.hash(vb), e.after.hash(va)
	cb, okB := constOf(hb)
	ca, okA := constOf(ha)
	if okB && okA && cb != ca {
		return fmt.Sprintf("constant %d became %d", cb, ca), true
	}
	fb, fbok := e.before.flat[vb]
	fa, faok := e.after.flat[va]
	if fbok && faok && fb.op == fa.op && (fb.op == lir.OpAdd || fb.op == lir.OpXor) &&
		fb.cnst != fa.cnst && sameStrings(fb.leaves, fa.leaves) {
		return fmt.Sprintf("%s chain constant %d became %d over identical operands", fb.op, fb.cnst, fa.cnst), true
	}
	// x vs x+c (c != 0): one side is a flattened chain whose leaves are
	// exactly {other side's hash} with a nonzero constant.
	if faok && fa.op == lir.OpAdd && fa.cnst != 0 && len(fa.leaves) == 1 && fa.leaves[0] == hb {
		return fmt.Sprintf("value was offset by %d", fa.cnst), true
	}
	if fbok && fb.op == lir.OpAdd && fb.cnst != 0 && len(fb.leaves) == 1 && fb.leaves[0] == ha {
		return fmt.Sprintf("value was offset by %d", -fb.cnst), true
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Per-side hashing

// observableOp reports ops whose execution is externally visible (§3.4
// verification map): memory writes, calls, allocations (their addresses feed
// later observables). GCCheck and BoundsCheck are excluded — gccheckelim and
// bce legitimately remove them; the trap set covers bounds checks.
func observableOp(op lir.Op) bool {
	switch op {
	case lir.OpArrStore, lir.OpFieldStore, lir.OpStaticStore,
		lir.OpCallStatic, lir.OpCallVirtual, lir.OpCallNative,
		lir.OpNewArray, lir.OpNewObject:
		return true
	}
	return false
}

func observables(b *lir.Block) []*lir.Value {
	var out []*lir.Value
	for _, v := range b.Insns {
		if observableOp(v.Op) {
			out = append(out, v)
		}
	}
	return out
}

// nontrivialPhis returns the live phis that did not collapse to an argument:
// the ones whose hash is still a positional token. Dead phis never enter a
// comparison, so a pass deleting them must not shift the pairing.
func nontrivialPhis(s *side, b *lir.Block) []*lir.Value {
	var out []*lir.Value
	for _, p := range b.Phis {
		if s.live[p] && strings.HasPrefix(s.hash(p), "phi:") {
			out = append(out, p)
		}
	}
	return out
}

// computeLive marks every value whose hash can enter a comparison: the
// arguments of observables and terminators, the trap-risky operations, and
// everything reachable from those through arguments.
func (s *side) computeLive() {
	s.live = map[*lir.Value]bool{}
	var mark func(v *lir.Value)
	mark = func(v *lir.Value) {
		if s.live[v] {
			return
		}
		s.live[v] = true
		for _, a := range v.Args {
			mark(a)
		}
	}
	for _, b := range s.fn.Blocks {
		for _, v := range b.Insns {
			if observableOp(v.Op) || v.IsTerminator() ||
				v.Op == lir.OpDiv || v.Op == lir.OpRem || v.Op == lir.OpBoundsCheck {
				mark(v)
			}
		}
	}
}

// indexMemory walks each block once, assigning observable indices (memory
// state tokens) to loads and recording exact-location store-to-load
// forwarding. Forwarding matches on the store kind, slot, and the *identical*
// SSA base/index values; any other store or any call invalidates everything.
func (s *side) indexMemory() {
	type loc struct {
		op        lir.Op
		slot      int64
		base, idx *lir.Value
	}
	for _, b := range s.fn.Blocks {
		avail := map[loc]*lir.Value{}
		obs := 0
		pid, paired := s.pairID[b]
		if !paired {
			pid = -(b.ID + 1) // unique, never matches a paired token
		}
		for _, v := range b.Insns {
			switch v.Op {
			case lir.OpArrLoad:
				if st, ok := avail[loc{lir.OpArrStore, 0, v.Args[0], v.Args[1]}]; ok {
					s.forward[v] = st
				} else {
					s.memtok[v] = fmt.Sprintf("m:%d:%d", pid, obs)
				}
			case lir.OpFieldLoad:
				if st, ok := avail[loc{lir.OpFieldStore, v.Slot, v.Args[0], nil}]; ok {
					s.forward[v] = st
				} else {
					s.memtok[v] = fmt.Sprintf("m:%d:%d", pid, obs)
				}
			case lir.OpStaticLoad:
				if st, ok := avail[loc{lir.OpStaticStore, v.Slot, nil, nil}]; ok {
					s.forward[v] = st
				} else {
					s.memtok[v] = fmt.Sprintf("m:%d:%d", pid, obs)
				}
			case lir.OpArrStore:
				avail = map[loc]*lir.Value{{lir.OpArrStore, 0, v.Args[0], v.Args[1]}: v.Args[2]}
			case lir.OpFieldStore:
				avail = map[loc]*lir.Value{{lir.OpFieldStore, v.Slot, v.Args[0], nil}: v.Args[1]}
			case lir.OpStaticStore:
				avail = map[loc]*lir.Value{{lir.OpStaticStore, v.Slot, nil, nil}: v.Args[0]}
			case lir.OpCallStatic, lir.OpCallVirtual, lir.OpCallNative:
				avail = map[loc]*lir.Value{}
			}
			if observableOp(v.Op) {
				obs++
			}
		}
	}
}

// assignPhiTokens names each currently-non-trivial phi by its pair and its
// position among its block's non-trivial phis.
func (s *side) assignPhiTokens() {
	for _, b := range s.fn.Blocks {
		pid, paired := s.pairID[b]
		if !paired {
			pid = -(b.ID + 1)
		}
		k := 0
		for _, p := range b.Phis {
			if !s.live[p] {
				continue // dead: excluded from positional pairing
			}
			if h, ok := s.hashes[p]; ok && !strings.HasPrefix(h, "phi:") {
				continue // collapsed to its unique argument
			}
			s.phitok[p] = fmt.Sprintf("phi:%d:%d", pid, k)
			k++
		}
	}
}

// collapsePhis rewrites the memoized hash of any phi whose non-self
// arguments all share one hash to that hash (the prunePhis criterion).
// Reports whether anything collapsed this round.
func (s *side) collapsePhis() bool {
	changed := false
	for _, b := range s.fn.Blocks {
		for _, p := range b.Phis {
			if !s.live[p] {
				continue
			}
			if h, ok := s.hashes[p]; ok && !strings.HasPrefix(h, "phi:") {
				continue // already collapsed
			}
			if to := s.trivialTo(p); to != "" {
				s.hashes[p] = to
				changed = true
			}
		}
	}
	return changed
}

// trivialTo returns the single shared argument hash of a trivial phi, or "".
func (s *side) trivialTo(p *lir.Value) string {
	shared := ""
	for _, a := range p.Args {
		if a == p {
			continue
		}
		h := s.hash(a)
		if shared == "" {
			shared = h
		} else if shared != h {
			return ""
		}
	}
	return shared
}

// resetHashes drops memoized hashes between phi-collapse rounds, keeping
// collapsed phi hashes (they seed the next round).
func (s *side) resetHashes() {
	kept := map[*lir.Value]string{}
	for v, h := range s.hashes {
		if v.Op == lir.OpPhi && !strings.HasPrefix(h, "phi:") {
			kept[v] = h
		}
	}
	s.hashes = kept
	s.flat = map[*lir.Value]flatExpr{}
}

// flattenable ops: fully associative and commutative over int64.
func flattenable(op lir.Op) bool {
	switch op {
	case lir.OpAdd, lir.OpMul, lir.OpAnd, lir.OpOr, lir.OpXor:
		return true
	}
	return false
}

// hash returns the canonical expression string for v.
func (s *side) hash(v *lir.Value) string {
	if h, ok := s.hashes[v]; ok {
		return h
	}
	if s.busy[v] {
		// A cycle not broken by a phi token: opaque, unique per side so it
		// never spuriously matches.
		return fmt.Sprintf("cyc:%p", v)
	}
	s.busy[v] = true
	h := s.compute(v)
	delete(s.busy, v)
	s.hashes[v] = h
	return h
}

func (s *side) compute(v *lir.Value) string {
	switch v.Op {
	case lir.OpConstInt:
		return fmt.Sprintf("ci:%d", v.Imm)
	case lir.OpConstFloat:
		return fmt.Sprintf("cf:%016x", math.Float64bits(v.F))
	case lir.OpParam:
		return fmt.Sprintf("p:%d", v.Slot)
	case lir.OpPhi:
		// Trivial-phi collapse happens in collapsePhis rounds; here a phi
		// always answers with its positional token, so hashing its own
		// arguments (loop-carried values) stays cycle-free.
		if t, ok := s.phitok[v]; ok {
			return t
		}
		return fmt.Sprintf("phi?:%p", v)
	case lir.OpArrLoad, lir.OpFieldLoad, lir.OpStaticLoad:
		if st, ok := s.forward[v]; ok {
			return s.hash(st)
		}
		parts := []string{"ld", v.Op.String(), fmt.Sprint(v.Slot), s.memtok[v]}
		for _, a := range v.Args {
			parts = append(parts, s.hash(a))
		}
		return "(" + strings.Join(parts, " ") + ")"
	case lir.OpArrLen:
		return "(arrlen " + s.hash(v.Args[0]) + ")"
	}
	if observableOp(v.Op) {
		// An observable's value (call result, allocation address) is named
		// by its position: pair plus observable index.
		pid, paired := s.pairID[v.Block]
		if !paired {
			return fmt.Sprintf("obs?:%p", v)
		}
		return fmt.Sprintf("obs:%d:%d", pid, s.obsIndex(v))
	}
	if flattenable(v.Op) {
		return s.hashFlat(v)
	}
	// Identity normalizations for the remaining shapes.
	switch v.Op {
	case lir.OpSub, lir.OpShr:
		a, b := s.hash(v.Args[0]), s.hash(v.Args[1])
		if ca, aok := constOf(a); aok {
			if cb, bok := constOf(b); bok {
				if r, ok := lir.FoldInt(v.Op, ca, cb); ok {
					return fmt.Sprintf("ci:%d", r)
				}
			}
		}
		if cb, bok := constOf(b); bok && cb == 0 {
			return a // x-0, x>>0
		}
		return "(" + v.Op.String() + " " + a + " " + b + ")"
	case lir.OpShl:
		a, b := s.hash(v.Args[0]), s.hash(v.Args[1])
		if ca, aok := constOf(a); aok {
			if cb, bok := constOf(b); bok {
				if r, ok := lir.FoldInt(v.Op, ca, cb); ok {
					return fmt.Sprintf("ci:%d", r)
				}
			}
		}
		if cb, bok := constOf(b); bok {
			// x << c is x * 2^c in wrapping two's complement (the shift count
			// is masked to 6 bits, FoldInt's rule), so a strength-reduced
			// shift hashes identically to the multiply it came from.
			return s.hashFlatAs(v, lir.OpMul, int64(1)<<(uint64(cb)&63), v.Args[:1])
		}
		return "(shl " + a + " " + b + ")"
	case lir.OpNeg:
		a := s.hash(v.Args[0])
		if ca, ok := constOf(a); ok {
			return fmt.Sprintf("ci:%d", -ca)
		}
		return "(neg " + a + ")"
	case lir.OpDiv, lir.OpRem:
		a, b := s.hash(v.Args[0]), s.hash(v.Args[1])
		if ca, aok := constOf(a); aok {
			if cb, bok := constOf(b); bok {
				if r, ok := lir.FoldInt(v.Op, ca, cb); ok {
					return fmt.Sprintf("ci:%d", r)
				}
			}
		}
		if cb, bok := constOf(b); bok && cb == 1 && v.Op == lir.OpDiv {
			return a
		}
		return "(" + v.Op.String() + " " + a + " " + b + ")"
	case lir.OpFAdd, lir.OpFSub, lir.OpFMul, lir.OpFDiv:
		a, b := s.hash(v.Args[0]), s.hash(v.Args[1])
		if fa, aok := floatOf(a); aok {
			if fb, bok := floatOf(b); bok {
				if r, ok := lir.FoldFloat(v.Op, fa, fb); ok {
					return fmt.Sprintf("cf:%016x", math.Float64bits(r))
				}
			}
		}
		return "(" + v.Op.String() + " " + a + " " + b + ")"
	case lir.OpFNeg:
		a := s.hash(v.Args[0])
		if fa, ok := floatOf(a); ok {
			r, _ := lir.FoldFloat(lir.OpFNeg, fa, 0)
			return fmt.Sprintf("cf:%016x", math.Float64bits(r))
		}
		return "(fneg " + a + ")"
	case lir.OpI2F:
		a := s.hash(v.Args[0])
		if ca, ok := constOf(a); ok {
			return fmt.Sprintf("cf:%016x", math.Float64bits(float64(ca)))
		}
		return "(i2f " + a + ")"
	case lir.OpF2I:
		a := s.hash(v.Args[0])
		if fa, ok := floatOf(a); ok {
			if r, rok := lir.FoldF2I(fa); rok {
				return fmt.Sprintf("ci:%d", r)
			}
		}
		return "(f2i " + a + ")"
	case lir.OpFCmp:
		a, b := s.hash(v.Args[0]), s.hash(v.Args[1])
		if fa, aok := floatOf(a); aok {
			if fb, bok := floatOf(b); bok {
				return fmt.Sprintf("ci:%d", lir.FoldFCmp(fa, fb))
			}
		}
		return "(fcmp " + a + " " + b + ")"
	case lir.OpClassOf, lir.OpIntrinsic:
		parts := []string{v.Op.String(), fmt.Sprint(v.Sym)}
		for _, a := range v.Args {
			parts = append(parts, s.hash(a))
		}
		return "(" + strings.Join(parts, " ") + ")"
	}
	// Anything else (void checks, terminators asked for directly) hashes
	// structurally.
	parts := []string{v.Op.String(), fmt.Sprint(v.Slot), fmt.Sprint(v.Sym)}
	for _, a := range v.Args {
		parts = append(parts, s.hash(a))
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// hashFlat flattens an associative-commutative chain: same-op children merge,
// constants fold into one, identities drop out, leaves sort.
func (s *side) hashFlat(v *lir.Value) string {
	op := v.Op
	var cnst int64
	switch op {
	case lir.OpAdd, lir.OpOr, lir.OpXor:
		cnst = 0
	case lir.OpMul:
		cnst = 1
	case lir.OpAnd:
		cnst = -1
	}
	return s.hashFlatAs(v, op, cnst, v.Args)
}

// hashFlatAs flattens args as an op-chain seeded with the constant cnst; the
// result is memoized under v. OpShl's strength-reduction alias enters here
// with op=OpMul and cnst=2^shift.
func (s *side) hashFlatAs(v *lir.Value, op lir.Op, cnst int64, args []*lir.Value) string {
	var leaves []string
	var walk func(a *lir.Value)
	walk = func(a *lir.Value) {
		if a.Op == op && !s.busy[a] {
			// Flatten through same-op children by their own args; mark busy
			// to keep phi cycles finite.
			s.busy[a] = true
			for _, c := range a.Args {
				walk(c)
			}
			delete(s.busy, a)
			return
		}
		if op == lir.OpMul && a.Op == lir.OpShl && !s.busy[a] {
			// A constant shift inside a multiply chain folds as its power of
			// two, mirroring the OpShl case in compute.
			if c, ok := constOf(s.hash(a.Args[1])); ok {
				cnst, _ = lir.FoldInt(lir.OpMul, cnst, int64(1)<<(uint64(c)&63))
				s.busy[a] = true
				walk(a.Args[0])
				delete(s.busy, a)
				return
			}
		}
		h := s.hash(a)
		if c, ok := constOf(h); ok {
			cnst, _ = lir.FoldInt(op, cnst, c)
			return
		}
		leaves = append(leaves, h)
	}
	for _, a := range args {
		walk(a)
	}
	sort.Strings(leaves)
	// Annihilators and identities.
	if (op == lir.OpMul && cnst == 0) || (op == lir.OpAnd && cnst == 0) {
		s.flat[v] = flatExpr{op: op, cnst: cnst}
		return "ci:0"
	}
	identity := (op == lir.OpAdd && cnst == 0) || (op == lir.OpOr && cnst == 0) ||
		(op == lir.OpXor && cnst == 0) || (op == lir.OpMul && cnst == 1) || (op == lir.OpAnd && cnst == -1)
	if len(leaves) == 0 {
		s.flat[v] = flatExpr{op: op, cnst: cnst}
		return fmt.Sprintf("ci:%d", cnst)
	}
	if len(leaves) == 1 && identity {
		s.flat[v] = flatExpr{op: op, cnst: cnst, leaves: leaves}
		return leaves[0]
	}
	s.flat[v] = flatExpr{op: op, cnst: cnst, leaves: leaves}
	parts := []string{op.String()}
	if !identity {
		parts = append(parts, fmt.Sprintf("ci:%d", cnst))
	}
	parts = append(parts, leaves...)
	return "(" + strings.Join(parts, " ") + ")"
}

func (s *side) obsIndex(v *lir.Value) int {
	k := 0
	for _, x := range v.Block.Insns {
		if x == v {
			return k
		}
		if observableOp(x.Op) {
			k++
		}
	}
	return -1
}

// trapSet collects the function-wide set of potentially-trapping operation
// hashes: division/remainder by a non-constant (or provably-zero) divisor,
// and bounds checks. Hashes are positionless sets on purpose: array lengths
// are immutable in this IR, so a check's outcome is a pure function of its
// (array, index) values, and GVN deleting a dominated duplicate check leaves
// the set — and the trap behavior — unchanged.
func (s *side) trapSet() map[string]bool {
	out := map[string]bool{}
	for _, b := range s.fn.Blocks {
		if _, paired := s.pairID[b]; !paired {
			continue // unreachable or unpaired: never executes
		}
		for _, v := range b.Insns {
			switch v.Op {
			case lir.OpDiv, lir.OpRem:
				db := s.hash(v.Args[1])
				if c, ok := constOf(db); ok && c != 0 {
					break // constant nonzero divisor: no trap possible
				}
				out[fmt.Sprintf("trap:%s:%s:%s", v.Op, s.hash(v.Args[0]), db)] = true
			case lir.OpBoundsCheck:
				out[fmt.Sprintf("trap:bc:%s:%s", s.hash(v.Args[0]), s.hash(v.Args[1]))] = true
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Small helpers

func constOf(h string) (int64, bool) {
	if !strings.HasPrefix(h, "ci:") {
		return 0, false
	}
	var n int64
	if _, err := fmt.Sscanf(h[3:], "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

func floatOf(h string) (float64, bool) {
	if !strings.HasPrefix(h, "cf:") {
		return 0, false
	}
	var bits uint64
	if _, err := fmt.Sscanf(h[3:], "%x", &bits); err != nil {
		return 0, false
	}
	return math.Float64frombits(bits), true
}

func sameStringSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dominatorsOf is a local, non-mutating dominator computation (the lir one
// in Recompute reorders blocks and prunes the CFG, which the validator must
// not do to evidence).
type domTree struct {
	reach map[*lir.Block]bool
	idom  map[*lir.Block]*lir.Block
	rpo   map[*lir.Block]int
}

func dominatorsOf(f *lir.Function) *domTree {
	d := &domTree{reach: map[*lir.Block]bool{}, idom: map[*lir.Block]*lir.Block{}, rpo: map[*lir.Block]int{}}
	if len(f.Blocks) == 0 {
		return d
	}
	entry := f.Blocks[0]
	var post []*lir.Block
	var dfs func(*lir.Block)
	dfs = func(b *lir.Block) {
		if d.reach[b] {
			return
		}
		d.reach[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(entry)
	order := make([]*lir.Block, len(post))
	for i := range post {
		order[i] = post[len(post)-1-i]
	}
	for i, b := range order {
		d.rpo[b] = i
	}
	d.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			var nd *lir.Block
			for _, p := range b.Preds {
				if d.idom[p] == nil {
					continue
				}
				if nd == nil {
					nd = p
				} else {
					nd = d.intersect(p, nd)
				}
			}
			if nd != nil && d.idom[b] != nd {
				d.idom[b] = nd
				changed = true
			}
		}
	}
	d.idom[entry] = nil
	return d
}

func (d *domTree) intersect(a, b *lir.Block) *lir.Block {
	for a != b {
		for d.rpo[a] > d.rpo[b] {
			if d.idom[a] == nil {
				return b
			}
			a = d.idom[a]
		}
		for d.rpo[b] > d.rpo[a] {
			if d.idom[b] == nil {
				return a
			}
			b = d.idom[b]
		}
	}
	return a
}

func (d *domTree) dominates(a, b *lir.Block) bool {
	for x := b; x != nil; x = d.idom[x] {
		if x == a {
			return true
		}
	}
	return false
}

// dominatesAllExits reports whether b dominates every reachable exit block
// (return or throw) — i.e. runs on every terminating execution. A function
// with no reachable exit never terminates normally; nothing dominates "all
// exits" vacuously usefully, so that returns false.
func dominatesAllExits(f *lir.Function, d *domTree, b *lir.Block) bool {
	exits := 0
	for _, x := range f.Blocks {
		if !d.reach[x] {
			continue
		}
		t := x.Term()
		if t == nil || (t.Op != lir.OpReturn && t.Op != lir.OpThrow) {
			continue
		}
		exits++
		if !d.dominates(b, x) {
			return false
		}
	}
	return exits > 0
}
