// Package tv is a translation-validation layer over the lir pass pipeline
// (§2, Fig. 1). It snapshots each function before a pass runs and afterwards
// tries to prove the pass preserved behavior; a proof failure is recorded —
// and optionally turned into an early compile rejection — *before* the
// expensive interpreted-replay evaluation the paper uses as ground truth
// (§3.4). The validator is deliberately one-sided: Rejected is only returned
// for provable miscompiles (or strict SSA violations), never for
// transformations it merely cannot follow, which become Unverified.
package tv

import (
	"fmt"

	"replayopt/internal/lir"
)

// Verdict classifies one pass application.
type Verdict uint8

// Verdicts.
const (
	// Verified: the pass provably preserved behavior.
	Verified Verdict = iota
	// Unverified: the validator could not follow the transformation. Not a
	// defect claim — CFG-restructuring passes routinely land here.
	Unverified
	// Rejected: the pass provably changed observable behavior, or broke the
	// strict SSA invariants. The candidate is a miscompile.
	Rejected
)

func (v Verdict) String() string {
	switch v {
	case Verified:
		return "verified"
	case Unverified:
		return "unverified"
	case Rejected:
		return "rejected"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// RejectError aborts a compile whose pipeline provably miscompiled. The GA
// classifies it as the tv-reject outcome, distinct from compiler crashes.
type RejectError struct {
	Pass   string
	Fn     string
	Reason string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("tv: pass %s rejected on %s: %s", e.Pass, e.Fn, e.Reason)
}

// PassVerdict is one recorded pass application.
type PassVerdict struct {
	Fn      string
	Pass    string
	Verdict Verdict
	Reason  string
}

// Options configure a Checker.
type Options struct {
	// Reject makes a Rejected verdict abort the compile with a RejectError.
	// Off, the checker only records verdicts (cmd/tvlint's audit mode).
	Reject bool
	// Strict additionally runs VerifyStrict after every pass; a violation is
	// a Rejected verdict attributed to that pass.
	Strict bool
}

// Checker implements lir.PipelineCheck: it snapshots the function before each
// pass and validates the result against the snapshot. One Checker serves one
// sequential compile; it is not safe for concurrent use.
type Checker struct {
	Opts     Options
	Verdicts []PassVerdict

	snap *lir.Function
}

// NewChecker returns a checker with the given options.
func NewChecker(opts Options) *Checker { return &Checker{Opts: opts} }

// BeforePass snapshots the function.
func (c *Checker) BeforePass(f *lir.Function, pass string, info *lir.PassInfo) {
	c.snap = Clone(f)
}

// AfterPass validates the pass result against the snapshot, records the
// verdict, and (with Opts.Reject) vetoes provable miscompiles.
func (c *Checker) AfterPass(f *lir.Function, pass string, info *lir.PassInfo) error {
	verdict, reason := Verified, ""
	if c.Opts.Strict {
		if err := VerifyStrict(f); err != nil {
			verdict, reason = Rejected, "strict: "+err.Error()
		}
	}
	if verdict != Rejected && c.snap != nil {
		var traits lir.Traits
		if info != nil {
			traits = info.Traits
		}
		verdict, reason = Validate(c.snap, f, traits)
	}
	c.Verdicts = append(c.Verdicts, PassVerdict{Fn: f.Name, Pass: pass, Verdict: verdict, Reason: reason})
	c.snap = nil
	if c.Opts.Reject && verdict == Rejected {
		return &RejectError{Pass: pass, Fn: f.Name, Reason: reason}
	}
	return nil
}

// Counts tallies verdicts by kind.
func (c *Checker) Counts() (verified, unverified, rejected int) {
	for _, pv := range c.Verdicts {
		switch pv.Verdict {
		case Verified:
			verified++
		case Unverified:
			unverified++
		case Rejected:
			rejected++
		}
	}
	return
}

// Clone deep-copies a function: fresh Blocks and Values with the same IDs,
// ops, types, and wiring, sharing only the immutable Prog. Analysis caches
// (IDom, LoopDepth) are not copied; the validator computes its own dominators.
func Clone(f *lir.Function) *lir.Function {
	bmap := make(map[*lir.Block]*lir.Block, len(f.Blocks))
	vmap := map[*lir.Value]*lir.Value{}
	out := &lir.Function{Prog: f.Prog, Method: f.Method, Name: f.Name}
	for _, b := range f.Blocks {
		bmap[b] = &lir.Block{ID: b.ID}
	}
	cloneVal := func(v *lir.Value, nb *lir.Block) *lir.Value {
		nv := &lir.Value{
			ID: v.ID, Op: v.Op, Type: v.Type, Block: nb,
			Imm: v.Imm, F: v.F, Sym: v.Sym, Slot: v.Slot, Cond: v.Cond, Hint: v.Hint,
			NoTrap: v.NoTrap,
		}
		vmap[v] = nv
		return nv
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, p := range b.Phis {
			nb.Phis = append(nb.Phis, cloneVal(p, nb))
		}
		for _, v := range b.Insns {
			nb.Insns = append(nb.Insns, cloneVal(v, nb))
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, bmap[s])
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, bmap[p])
		}
		out.Blocks = append(out.Blocks, nb)
	}
	// Second pass: rewire arguments through the value map. An argument whose
	// definition is outside every block (malformed IR) keeps the original
	// pointer; VerifyIR reports that separately.
	fix := func(v *lir.Value) {
		if len(v.Args) == 0 {
			return
		}
		args := make([]*lir.Value, len(v.Args))
		for i, a := range v.Args {
			if na, ok := vmap[a]; ok {
				args[i] = na
			} else {
				args[i] = a
			}
		}
		vmap[v].Args = args
	}
	for _, b := range f.Blocks {
		for _, p := range b.Phis {
			fix(p)
		}
		for _, v := range b.Insns {
			fix(v)
		}
	}
	return out
}
