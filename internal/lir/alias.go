package lir

import (
	"sort"

	"replayopt/internal/dex"
	"replayopt/internal/sa"
)

// Intraprocedural Andersen-style points-to analysis (the engine behind the
// alias-aware memory passes — storeforward, dse, licm, stackalloc — and
// behind the internal/sa/pts interprocedural driver). Flow-insensitive and
// field-sensitive: abstract objects are this function's allocation sites plus
// one pseudo-object per reference parameter plus Extern ("any object that
// pre-exists this invocation or was made by a callee"), and each ref-typed
// SSA value gets the set of objects it may denote, with per-(object, slot)
// contents for reference fields. Three fact families ride on top:
//
//   - may-alias disambiguation between memory accesses (kind, slot, base
//     points-to disjointness, constant-index separation), which is what lets
//     DSE look past unrelated loads and store-to-load forwarding survive
//     unrelated stores;
//   - call mod/ref sets read from the interprocedural summaries
//     (sa.Result.Alias, attached by internal/sa/pts over the CHA/RTA call
//     graph with virtual fan-out via ImplsOf), which is what lets licm hoist
//     loads past calls that provably touch disjoint locations;
//   - escape verdicts per allocation site (returned, thrown, stored into
//     reachable memory, or handed to an escaping callee parameter), which is
//     what stackalloc and the verify-map store elision consume.
//
// The freshness argument that makes the pseudo-object partition sound: a
// parameter's referent exists before the invocation begins, while a local
// allocation site (as an SSA value) always denotes an object created by this
// activation after entry — so a parameter and a local site can never denote
// the same object, even under recursion. Extern can only denote a local site
// once that site has escaped.
//
// Everything here is deterministic: iteration is over the function's slices
// in program order (the per-object field tables are walked via the
// program-order object list, never by map range), so the facts — and
// therefore the passes and the GA search traces built on them — are
// byte-identical across runs.

// objKind classifies an abstract object.
const (
	objNone  uint8 = iota
	objSite        // a local allocation site (OpNewArray/OpNewObject)
	objParam       // a reference parameter's pre-existing referent
)

// elemSlot is the field-table key for array-element contents (distinct from
// every real field slot, which are >= 0).
const elemSlot = int64(-1)

// objSet is a set of abstract objects: the Extern bit plus sorted value IDs
// of sites and parameter pseudo-objects.
type objSet struct {
	extern bool
	ids    []int32
}

func (s *objSet) addID(id int32) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		return false
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
	return true
}

func (s *objSet) addSet(o objSet) bool {
	changed := false
	if o.extern && !s.extern {
		s.extern = true
		changed = true
	}
	for _, id := range o.ids {
		if s.addID(id) {
			changed = true
		}
	}
	return changed
}

// fldEnt is the ref contents of one (object, slot) cell.
type fldEnt struct {
	slot int64
	set  objSet
}

// AliasFacts is the analysis result for one function.
type AliasFacts struct {
	f      *Function
	static *sa.Result
	// converged is false when the fixpoint hit the round cap; every query
	// then degrades to the conservative answer (may alias, Top mod/ref,
	// everything escapes).
	converged bool
	kind      []uint8  // by Value.ID: objNone/objSite/objParam
	val       []objSet // by Value.ID: points-to set of ref-typed values
	esc       []bool   // by object ID: referent may be reachable after return
	leaked    []bool   // by object ID: handed to a callee (contents tainted)
	fld       map[int32][]fldEnt
	objs      []int32 // program-order object IDs (deterministic iteration)
}

// maxAliasRounds caps the fixpoint sweeps; the object universe is tiny (one
// entry per allocation site and ref parameter), so real functions converge in
// two or three.
const maxAliasRounds = 32

// AnalyzeAlias computes points-to, escape, and may-alias facts for f. static
// (and static.Alias) may be nil; the analysis then has no interprocedural
// facts, so every call escapes its ref arguments and answers Top mod/ref. The
// function is not modified.
func AnalyzeAlias(f *Function, static *sa.Result) *AliasFacts {
	n := f.NumValues()
	fx := &AliasFacts{
		f:      f,
		static: static,
		kind:   make([]uint8, n),
		val:    make([]objSet, n),
		esc:    make([]bool, n),
		leaked: make([]bool, n),
		fld:    map[int32][]fldEnt{},
	}
	// Object discovery in program order.
	for _, b := range f.Blocks {
		for _, v := range b.Insns {
			switch v.Op {
			case OpNewArray, OpNewObject:
				fx.kind[v.ID] = objSite
				fx.objs = append(fx.objs, int32(v.ID))
			case OpParam:
				if v.Type == TRef {
					fx.kind[v.ID] = objParam
					fx.objs = append(fx.objs, int32(v.ID))
				}
			}
		}
	}
	for round := 0; ; round++ {
		if round == maxAliasRounds {
			return fx // converged stays false: every query answers top
		}
		if !fx.sweep() {
			fx.converged = true
			return fx
		}
	}
}

// fldSet returns the (object, slot) contents cell, creating it on demand.
func (fx *AliasFacts) fldSet(obj int32, slot int64) *fldEnt {
	ents := fx.fld[obj]
	for i := range ents {
		if ents[i].slot == slot {
			return &ents[i]
		}
	}
	fx.fld[obj] = append(ents, fldEnt{slot: slot})
	return &fx.fld[obj][len(fx.fld[obj])-1]
}

// escapeSet marks every object in s escaped (and leaked).
func (fx *AliasFacts) escapeSet(s objSet) bool {
	changed := false
	for _, id := range s.ids {
		if !fx.esc[id] {
			fx.esc[id] = true
			changed = true
		}
		if !fx.leaked[id] {
			fx.leaked[id] = true
			changed = true
		}
	}
	return changed
}

// leakSet marks every object in s leaked: a callee saw the reference (and may
// have stored anything into its fields) but cannot retain it.
func (fx *AliasFacts) leakSet(s objSet) bool {
	changed := false
	for _, id := range s.ids {
		if !fx.leaked[id] {
			fx.leaked[id] = true
			changed = true
		}
	}
	return changed
}

// pts returns the points-to set of v (empty for non-ref or unknown values).
func (fx *AliasFacts) pts(v *Value) objSet {
	if v == nil || v.ID < 0 || v.ID >= len(fx.val) {
		return objSet{extern: true}
	}
	return fx.val[v.ID]
}

// argEscapes reports whether handing a reference as argument j of call may
// let the callee retain it, joining over every CHA/RTA implementation.
// Unknown callees and missing summaries escape.
func (fx *AliasFacts) argEscapes(call *Value, j int) bool {
	if fx.static == nil || fx.static.Alias == nil {
		return true
	}
	al := fx.static.Alias
	if call.Op == OpCallStatic {
		return al.ParamMayEscape(dex.MethodID(call.Sym), j)
	}
	impls := fx.static.Graph.ImplsOf(dex.MethodID(call.Sym))
	for _, t := range impls {
		if al.ParamMayEscape(t, j) {
			return true
		}
	}
	return false
}

// sweep applies every constraint once, in program order, reporting change.
func (fx *AliasFacts) sweep() bool {
	changed := false
	add := func(v *Value, s objSet) {
		if v.ID >= 0 && v.ID < len(fx.val) && fx.val[v.ID].addSet(s) {
			changed = true
		}
	}
	self := func(v *Value) {
		if fx.val[v.ID].addID(int32(v.ID)) {
			changed = true
		}
	}
	// loadFrom joins the contents of (base's objects, slot) into dst.
	loadFrom := func(dst, base *Value, slot int64) {
		bs := fx.pts(base)
		if bs.extern {
			add(dst, objSet{extern: true})
		}
		for _, o := range bs.ids {
			if fx.kind[o] == objParam || fx.esc[o] || fx.leaked[o] {
				// Pre-existing or callee-visible memory: anything may have
				// been stored there by code we cannot see.
				add(dst, objSet{extern: true})
			}
			add(dst, fx.fldSet(o, slot).set)
		}
	}
	// storeTo records pts(val) into (base's objects, slot); storing into
	// Extern, a parameter's referent, or an escaped object escapes the value.
	storeTo := func(base, val *Value, slot int64) {
		if val == nil || val.Type != TRef {
			return
		}
		vs := fx.pts(val)
		bs := fx.pts(base)
		if bs.extern {
			if fx.escapeSet(vs) {
				changed = true
			}
		}
		for _, o := range bs.ids {
			if fx.fldSet(o, slot).set.addSet(vs) {
				changed = true
			}
			if fx.kind[o] == objParam || fx.esc[o] {
				if fx.escapeSet(vs) {
					changed = true
				}
			}
		}
	}
	for _, b := range fx.f.Blocks {
		for _, p := range b.Phis {
			if p.Type != TRef {
				continue
			}
			for _, a := range p.Args {
				add(p, fx.pts(a))
			}
		}
		for _, v := range b.Insns {
			switch v.Op {
			case OpNewArray, OpNewObject, OpParam:
				if fx.kind[v.ID] != objNone {
					self(v)
				}
			case OpArrLoad:
				if v.Type == TRef {
					loadFrom(v, v.Args[0], elemSlot)
				}
			case OpFieldLoad:
				if v.Type == TRef {
					loadFrom(v, v.Args[0], v.Slot)
				}
			case OpStaticLoad:
				if v.Type == TRef {
					add(v, objSet{extern: true})
				}
			case OpArrStore:
				storeTo(v.Args[0], v.Args[2], elemSlot)
			case OpFieldStore:
				storeTo(v.Args[0], v.Args[1], v.Slot)
			case OpStaticStore:
				if v.Args[0].Type == TRef {
					if fx.escapeSet(fx.pts(v.Args[0])) {
						changed = true
					}
				}
			case OpReturn, OpThrow:
				if len(v.Args) > 0 && v.Args[0].Type == TRef {
					if fx.escapeSet(fx.pts(v.Args[0])) {
						changed = true
					}
				}
			case OpCallStatic, OpCallVirtual:
				for j, a := range v.Args {
					if a.Type != TRef {
						continue
					}
					if fx.argEscapes(v, j) {
						if fx.escapeSet(fx.pts(a)) {
							changed = true
						}
					} else if fx.leakSet(fx.pts(a)) {
						changed = true
					}
				}
				if v.Type == TRef {
					add(v, objSet{extern: true})
				}
			case OpCallNative, OpIntrinsic:
				// Natives receive only scalar parameters (see
				// dex/stdnatives.go), so no reference can cross the
				// boundary; escape defensively if one ever does.
				for _, a := range v.Args {
					if a.Type == TRef {
						if fx.escapeSet(fx.pts(a)) {
							changed = true
						}
					}
				}
				if v.Type == TRef {
					add(v, objSet{extern: true})
				}
			default:
				// Any other ref-producing op denotes an unknown object.
				if v.Type == TRef && fx.kind[v.ID] == objNone {
					add(v, objSet{extern: true})
				}
			}
		}
	}
	// Transitive closure: everything stored in an escaped object escapes,
	// and the contents of leaked objects are callee-visible too.
	for _, o := range fx.objs {
		if !fx.esc[o] && !fx.leaked[o] {
			continue
		}
		for i := range fx.fld[o] {
			if fx.esc[o] {
				if fx.escapeSet(fx.fld[o][i].set) {
					changed = true
				}
			} else if fx.leakSet(fx.fld[o][i].set) {
				changed = true
			}
		}
	}
	return changed
}

// Converged reports whether the fixpoint stabilized; when false every query
// already answers conservatively.
func (fx *AliasFacts) Converged() bool { return fx.converged }

// overlap reports whether two points-to sets can denote a common object.
// Extern and parameter referents pre-exist the invocation, so they overlap
// each other but never a non-escaped local site.
func (fx *AliasFacts) overlap(a, b objSet) bool {
	aPre := a.extern
	bPre := b.extern
	for _, id := range a.ids {
		if fx.kind[id] == objParam {
			aPre = true
			break
		}
	}
	for _, id := range b.ids {
		if fx.kind[id] == objParam {
			bPre = true
			break
		}
	}
	if aPre && bPre {
		return true
	}
	if aPre {
		for _, id := range b.ids {
			if fx.kind[id] == objSite && fx.esc[id] {
				return true
			}
		}
	}
	if bPre {
		for _, id := range a.ids {
			if fx.kind[id] == objSite && fx.esc[id] {
				return true
			}
		}
	}
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] == b.ids[j]:
			return true
		case a.ids[i] < b.ids[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// accessShape returns the location kind and base/index/slot of a memory
// access, or ok=false for non-access ops.
func accessShape(v *Value) (kind sa.LocKind, base, idx *Value, slot int64, ok bool) {
	switch v.Op {
	case OpArrLoad:
		return sa.LocElem, v.Args[0], v.Args[1], 0, true
	case OpArrStore:
		return sa.LocElem, v.Args[0], v.Args[1], 0, true
	case OpFieldLoad, OpFieldStore:
		return sa.LocField, v.Args[0], nil, v.Slot, true
	case OpStaticLoad, OpStaticStore:
		return sa.LocGlobal, nil, nil, v.Slot, true
	}
	return 0, nil, nil, 0, false
}

// Loc abstracts a memory access to its interprocedural location (the MemLoc
// vocabulary the mod/ref summaries speak). ok=false for non-access ops.
func (fx *AliasFacts) Loc(v *Value) (sa.MemLoc, bool) {
	k, _, _, slot, ok := accessShape(v)
	if !ok {
		return sa.MemLoc{}, false
	}
	if k == sa.LocElem {
		slot = 0
	}
	return sa.MemLoc{Kind: k, Slot: slot}, ok
}

// MayAlias reports whether two memory accesses may touch the same address.
// Conservative on anything it cannot prove apart; callers may pass any two
// access ops (load/load pairs included).
func (fx *AliasFacts) MayAlias(a, b *Value) bool {
	ak, abase, aidx, aslot, aok := accessShape(a)
	bk, bbase, bidx, bslot, bok := accessShape(b)
	if !aok || !bok {
		return true
	}
	if ak != bk {
		// Statics live in their own segment; an object is an array or a
		// scalar-field object, never both.
		return false
	}
	switch ak {
	case sa.LocGlobal:
		return aslot == bslot
	case sa.LocField:
		if aslot != bslot {
			return false
		}
		if abase == bbase {
			return true
		}
		if !fx.converged {
			return true
		}
		return fx.overlap(fx.pts(abase), fx.pts(bbase))
	default: // LocElem
		if abase == bbase {
			// Same array: distinct constant indices never collide.
			if aidx != nil && bidx != nil &&
				aidx.Op == OpConstInt && bidx.Op == OpConstInt && aidx.Imm != bidx.Imm {
				return false
			}
			return true
		}
		if !fx.converged {
			return true
		}
		return fx.overlap(fx.pts(abase), fx.pts(bbase))
	}
}

// callTargetsModRef joins the interprocedural mod/ref summaries of every
// possible callee. Top when summaries are missing.
func (fx *AliasFacts) callTargetsModRef(call *Value) sa.ModRefSummary {
	switch call.Op {
	case OpCallNative, OpIntrinsic:
		// Scalar-only boundary: a native cannot read or write the managed
		// heap. Degrade to Top if a ref argument ever shows up.
		for _, a := range call.Args {
			if a.Type == TRef {
				return sa.TopModRef()
			}
		}
		return sa.ModRefSummary{}
	case OpCallStatic, OpCallVirtual:
	default:
		return sa.TopModRef()
	}
	if fx.static == nil || fx.static.Alias == nil {
		return sa.TopModRef()
	}
	al := fx.static.Alias
	pick := func(m dex.MethodID) sa.ModRefSummary {
		if int(m) < 0 || int(m) >= len(al.ModRef) {
			return sa.TopModRef()
		}
		return al.ModRef[m]
	}
	if call.Op == OpCallStatic {
		return pick(dex.MethodID(call.Sym))
	}
	var sum sa.ModRefSummary
	for _, t := range fx.static.Graph.ImplsOf(dex.MethodID(call.Sym)) {
		s := pick(t)
		sum.Mod.AddSet(s.Mod)
		sum.Ref.AddSet(s.Ref)
	}
	return sum
}

// ModifiedBy returns the caller-visible locations call may write.
func (fx *AliasFacts) ModifiedBy(call *Value) sa.LocSet {
	return fx.callTargetsModRef(call).Mod
}

// ReadBy returns the caller-visible locations call may read.
func (fx *AliasFacts) ReadBy(call *Value) sa.LocSet {
	return fx.callTargetsModRef(call).Ref
}

// Escapes reports whether the allocation site (an OpNewArray/OpNewObject
// value of this function) may be reachable after the function returns.
// Conservative for anything that is not a converged local site.
func (fx *AliasFacts) Escapes(site *Value) bool {
	if !fx.converged || site == nil || site.ID < 0 || site.ID >= len(fx.kind) ||
		fx.kind[site.ID] != objSite {
		return true
	}
	return fx.esc[site.ID]
}

// Leaked reports whether the site was handed to a callee (its field contents
// are then callee-visible even if the reference itself cannot be retained).
func (fx *AliasFacts) Leaked(site *Value) bool {
	if fx.Escapes(site) {
		return true
	}
	return fx.leaked[site.ID]
}

// invisible reports whether every object base may denote is provably
// unreachable by callers and callees-of-callers: a non-escaped local site.
// Accesses through such bases are excluded from the mod/ref summary — the
// precision payoff of the whole analysis.
func (fx *AliasFacts) invisible(base *Value) bool {
	if !fx.converged {
		return false
	}
	s := fx.pts(base)
	if s.extern || len(s.ids) == 0 {
		return false
	}
	for _, id := range s.ids {
		if fx.kind[id] != objSite || fx.esc[id] {
			return false
		}
	}
	return true
}

// Summarize extracts this function's caller-visible mod/ref contract and
// parameter-escape bits, joining callee summaries at call sites (the
// interprocedural driver in internal/sa/pts iterates this over the SCC
// condensation until stable). Non-converged functions summarize to Top with
// every parameter escaping.
func (fx *AliasFacts) Summarize() (sum sa.ModRefSummary, paramEscape uint64) {
	if !fx.converged {
		return sa.TopModRef(), ^uint64(0)
	}
	for _, b := range fx.f.Blocks {
		for _, v := range b.Insns {
			switch v.Op {
			case OpArrStore, OpFieldStore, OpStaticStore:
				if l, ok := fx.Loc(v); ok {
					base := (*Value)(nil)
					if v.Op != OpStaticStore {
						base = v.Args[0]
					}
					if v.Op == OpStaticStore || !fx.invisible(base) {
						sum.Mod.Add(l)
					}
				}
			case OpArrLoad, OpFieldLoad, OpStaticLoad:
				if l, ok := fx.Loc(v); ok {
					base := (*Value)(nil)
					if v.Op != OpStaticLoad {
						base = v.Args[0]
					}
					if v.Op == OpStaticLoad || !fx.invisible(base) {
						sum.Ref.Add(l)
					}
				}
			case OpCallStatic, OpCallVirtual, OpCallNative, OpIntrinsic:
				s := fx.callTargetsModRef(v)
				sum.Mod.AddSet(s.Mod)
				sum.Ref.AddSet(s.Ref)
			}
			// OpArrLen, OpBoundsCheck, and OpClassOf read only object
			// headers, which are immutable after allocation — no location.
		}
	}
	for _, id := range fx.objs {
		if fx.kind[id] != objParam {
			continue
		}
		v := fx.valueByID(id)
		if v == nil {
			continue
		}
		if j := int(v.Slot); fx.esc[id] && j >= 0 && j < 63 {
			paramEscape |= 1 << uint(j)
		}
	}
	return sum, paramEscape
}

// valueByID finds the entry-block value carrying id (parameter lookup only).
func (fx *AliasFacts) valueByID(id int32) *Value {
	for _, b := range fx.f.Blocks {
		for _, v := range b.Insns {
			if int32(v.ID) == id {
				return v
			}
		}
	}
	return nil
}

// SiteVerdicts reports every allocation site of this function in program
// order with its escape verdict (true = may escape).
func (fx *AliasFacts) SiteVerdicts(fn func(site sa.AllocSite, escapes bool)) {
	for _, b := range fx.f.Blocks {
		for _, v := range b.Insns {
			if v.Op != OpNewArray && v.Op != OpNewObject {
				continue
			}
			fn(sa.AllocSite{Method: dex.MethodID(v.Slot), PC: int(v.Imm)}, fx.Escapes(v))
		}
	}
}
