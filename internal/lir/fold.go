package lir

import "math"

// Constant evaluation shared by constfold (pass_scalar.go) and the
// translation validator (internal/lir/tv). The validator must fold with
// exactly the pass's semantics — wrapping int64 arithmetic, 6-bit shift
// masking, division traps preserved — or a correct constfold application
// would look like a provable miscompile.

// FoldInt evaluates an integer operation over constant operands. Unary ops
// (OpNeg) read a only. Division and remainder by zero do not fold (the
// runtime trap must be preserved). ok=false for non-foldable ops.
func FoldInt(op Op, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		return a << (uint64(b) & 63), true
	case OpShr:
		return a >> (uint64(b) & 63), true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpNeg:
		return -a, true
	}
	return 0, false
}

// FoldFloat evaluates a float operation over constant operands (OpFNeg reads
// a only). ok=false for non-foldable ops.
func FoldFloat(op Op, a, b float64) (float64, bool) {
	switch op {
	case OpFAdd:
		return a + b, true
	case OpFSub:
		return a - b, true
	case OpFMul:
		return a * b, true
	case OpFDiv:
		return a / b, true
	case OpFNeg:
		return -a, true
	}
	return 0, false
}

// FoldF2I converts a constant float to int with the conversion's partiality:
// NaN and out-of-range values do not fold.
func FoldF2I(a float64) (int64, bool) {
	if math.IsNaN(a) || a < math.MinInt64 || a > math.MaxInt64 {
		return 0, false
	}
	return int64(a), true
}

// FoldFCmp is the three-way float compare (-1/0/1; NaN compares as "less").
func FoldFCmp(a, b float64) int64 {
	switch {
	case a > b:
		return 1
	case a == b:
		return 0
	default:
		return -1
	}
}

// EvalCond evaluates a branch condition over constant integers.
func EvalCond(c Cond, a, b int64) bool {
	switch c {
	case CondEq:
		return a == b
	case CondNe:
		return a != b
	case CondLt:
		return a < b
	case CondLe:
		return a <= b
	case CondGt:
		return a > b
	case CondGe:
		return a >= b
	}
	return false
}
