// Package lir is the LLVM analogue of the paper's toolchain (§3.5): an
// SSA-form IR built from HGraph, a large space of optimization passes —
// including deliberately unsafe ones whose miscompilations the verification
// map must catch (§2, Fig. 1) — and a lowering to machine code controlled by
// llc-style options.
package lir

import (
	"fmt"
	"strings"

	"replayopt/internal/dex"
)

// Type is an SSA value type.
type Type uint8

// Value types.
const (
	TVoid Type = iota
	TInt
	TFloat
	TRef
)

func (t Type) String() string {
	return [...]string{"void", "int", "float", "ref"}[t]
}

// Op is an SSA operation.
type Op uint8

// SSA operations.
const (
	OpInvalid Op = iota

	OpParam    // parameter Slot
	OpConstInt // Imm
	OpConstFloat
	OpPhi

	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg

	// Float arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	OpI2F
	OpF2I
	OpFCmp // three-way -1/0/1

	// Memory. Bounds checks are explicit and separable so BCE is a real
	// transformation with real risk.
	//
	// Trap semantics. OpBoundsCheck traps (aborts the execution with an
	// error, observable exactly at that program point) when idx < 0 or
	// idx >= arrlen(arr); OpDiv and OpRem trap when the divisor is zero; and
	// OpThrow always terminates with its code. A trap is an observable
	// behavior: passes may only remove or reorder a trapping op when they can
	// prove it never fires, which is why none of them are IsPure and why the
	// translation validator tracks a function-wide trap-risky op set
	// (tv/equiv.go). The outcome of a check is a pure function of its
	// argument values — array lengths are immutable in this IR — so GVN may
	// dedup an OpBoundsCheck dominated by an identical one (gvnEligible), bce
	// and rangecheckelim may delete checks they prove redundant, and
	// rangecheckelim may mark a Div/Rem NoTrap when the divisor is proven
	// nonzero, but no pass may fold away a possibly-trapping Div/Rem (see
	// FoldInt, which refuses division by zero) or speculate one onto a path
	// that did not execute it.
	OpArrLen      // args: arr
	OpBoundsCheck // args: arr, idx (void)
	OpArrLoad     // args: arr, idx
	OpArrStore    // args: arr, idx, val (void)
	OpFieldLoad   // args: obj; Slot = field
	OpFieldStore  // args: obj, val; Slot = field
	OpStaticLoad  // Slot = global
	OpStaticStore // args: val; Slot = global
	OpNewArray    // args: len; Sym = dex.Kind
	OpNewObject   // Sym = class
	OpClassOf     // args: obj -> class id (for devirtualization guards)

	OpCallStatic  // Sym = method
	OpCallVirtual // Sym = declared method; args[0] = receiver
	OpCallNative  // Sym = native
	OpIntrinsic   // Sym = dex.IntrinsicKind

	OpGCCheck

	// Terminators.
	OpBranch // args: a, b; Cond; Succs[0] taken, Succs[1] fallthrough
	OpJump
	OpReturn // args: optional value
	OpThrow  // args: code

	opCount
)

var opNames = [...]string{
	OpInvalid: "invalid", OpParam: "param", OpConstInt: "const",
	OpConstFloat: "constf", OpPhi: "phi",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpNeg: "neg",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpI2F: "i2f", OpF2I: "f2i", OpFCmp: "fcmp",
	OpArrLen: "arrlen", OpBoundsCheck: "boundscheck", OpArrLoad: "arrload",
	OpArrStore: "arrstore", OpFieldLoad: "fieldload", OpFieldStore: "fieldstore",
	OpStaticLoad: "staticload", OpStaticStore: "staticstore",
	OpNewArray: "newarray", OpNewObject: "newobject", OpClassOf: "classof",
	OpCallStatic: "call", OpCallVirtual: "callvirt", OpCallNative: "callnative",
	OpIntrinsic: "intrinsic", OpGCCheck: "gccheck",
	OpBranch: "branch", OpJump: "jump", OpReturn: "return", OpThrow: "throw",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("lirop(%d)", uint8(o))
}

// Cond is a branch/compare condition over integers.
type Cond uint8

// Branch conditions.
const (
	CondEq Cond = iota
	CondNe
	CondLt
	CondLe
	CondGt
	CondGe
)

func (c Cond) String() string { return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[c] }

// Invert returns the negated condition.
func (c Cond) Invert() Cond {
	return [...]Cond{CondNe, CondEq, CondGe, CondGt, CondLe, CondLt}[c]
}

// Hint is a static branch prediction hint.
type Hint uint8

// Branch hints.
const (
	HintNone Hint = iota
	HintTaken
	HintNotTaken
)

// Value is one SSA instruction; every instruction is a value (void-typed for
// effects).
type Value struct {
	ID    int
	Op    Op
	Type  Type
	Args  []*Value
	Block *Block

	Imm  int64
	F    float64
	Sym  int
	Slot int64
	Cond Cond
	Hint Hint

	// NoTrap marks a Div/Rem whose divisor rangecheckelim proved nonzero;
	// lowering emits the unguarded machine divide for it. Meaningless on
	// other ops. The mark is sound to keep on the value: no pass hoists
	// impure ops, and argument rewrites substitute equal values.
	NoTrap bool
}

func (v *Value) String() string {
	var b strings.Builder
	if v.Type != TVoid {
		fmt.Fprintf(&b, "v%d = ", v.ID)
	}
	b.WriteString(v.Op.String())
	if v.Op == OpBranch {
		fmt.Fprintf(&b, ".%s", v.Cond)
	}
	for _, a := range v.Args {
		fmt.Fprintf(&b, " v%d", a.ID)
	}
	switch v.Op {
	case OpConstInt:
		fmt.Fprintf(&b, " #%d", v.Imm)
	case OpConstFloat:
		fmt.Fprintf(&b, " #%g", v.F)
	case OpParam:
		fmt.Fprintf(&b, " p%d", v.Slot)
	case OpFieldLoad, OpFieldStore, OpStaticLoad, OpStaticStore:
		fmt.Fprintf(&b, " slot%d", v.Slot)
	case OpCallStatic, OpCallVirtual, OpCallNative, OpIntrinsic, OpNewObject, OpNewArray:
		fmt.Fprintf(&b, " sym%d", v.Sym)
	}
	return b.String()
}

// IsPure reports whether the value has no side effects and no trap risk, so
// it can be removed when unused and reordered freely.
func (v *Value) IsPure() bool {
	switch v.Op {
	case OpParam, OpConstInt, OpConstFloat, OpPhi,
		OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpNeg,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg,
		OpI2F, OpF2I, OpFCmp, OpClassOf, OpIntrinsic:
		return true
	}
	return false
}

// IsTerminator reports whether v ends a block.
func (v *Value) IsTerminator() bool {
	switch v.Op {
	case OpBranch, OpJump, OpReturn, OpThrow:
		return true
	}
	return false
}

// Block is an SSA basic block. Phis live separately at the head.
type Block struct {
	ID    int
	Phis  []*Value
	Insns []*Value // body; last one is the terminator
	Succs []*Block
	Preds []*Block

	// Analysis caches.
	IDom      *Block
	LoopDepth int
	rpo       int
	visited   bool // scratch mark for pruneUnreachable's DFS
}

// Term returns the block terminator.
func (b *Block) Term() *Value {
	if len(b.Insns) == 0 {
		return nil
	}
	t := b.Insns[len(b.Insns)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Body returns the non-terminator instructions.
func (b *Block) Body() []*Value {
	if b.Term() != nil {
		return b.Insns[:len(b.Insns)-1]
	}
	return b.Insns
}

// Function is one method in SSA form.
type Function struct {
	Prog   *dex.Program
	Method dex.MethodID
	Name   string
	Blocks []*Block // Blocks[0] is the entry

	nextValueID int
	nextBlockID int
}

// NewValue creates a fresh value.
func (f *Function) NewValue(op Op, t Type, args ...*Value) *Value {
	v := &Value{ID: f.nextValueID, Op: op, Type: t, Args: args}
	f.nextValueID++
	return v
}

// NewBlock creates a fresh block (unattached).
func (f *Function) NewBlock() *Block {
	b := &Block{ID: f.nextBlockID}
	f.nextBlockID++
	return b
}

// NumValues returns the number of values ever created (a code-size proxy and
// the pipeline explosion cap).
func (f *Function) NumValues() int { return f.nextValueID }

// Append places v at the end of b's body, before any terminator.
func (b *Block) Append(v *Value) {
	v.Block = b
	if t := b.Term(); t != nil {
		b.Insns = append(b.Insns[:len(b.Insns)-1], v, t)
	} else {
		b.Insns = append(b.Insns, v)
	}
}

// AppendRaw places v at the very end of b (used for terminators).
func (b *Block) AppendRaw(v *Value) {
	v.Block = b
	b.Insns = append(b.Insns, v)
}

// AddEdge wires a CFG edge.
func AddEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// PredIndex returns p's position in b.Preds (phi argument index).
func (b *Block) PredIndex(p *Block) int {
	for i, x := range b.Preds {
		if x == p {
			return i
		}
	}
	return -1
}

// String renders the function for debugging.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s {\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(b.Preds) > 0 {
			sb.WriteString(" ; preds:")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " b%d", p.ID)
			}
		}
		sb.WriteByte('\n')
		for _, p := range b.Phis {
			fmt.Fprintf(&sb, "  %s\n", p)
		}
		for _, v := range b.Insns {
			fmt.Fprintf(&sb, "  %s\n", v)
		}
		if t := b.Term(); t != nil && len(b.Succs) > 0 {
			sb.WriteString("  ; succs:")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.ID)
			}
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// ReplaceUses substitutes old with new in every argument list of f.
func (f *Function) ReplaceUses(old, new *Value) {
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			for i, a := range v.Args {
				if a == old {
					v.Args[i] = new
				}
			}
		}
		for _, v := range b.Insns {
			for i, a := range v.Args {
				if a == old {
					v.Args[i] = new
				}
			}
		}
	}
}

// UseCounts computes how many times each value is used as an argument,
// indexed by Value.ID (dense per function).
func (f *Function) UseCounts() []int32 {
	uses := make([]int32, f.nextValueID)
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			for _, a := range v.Args {
				uses[a.ID]++
			}
		}
		for _, v := range b.Insns {
			for _, a := range v.Args {
				uses[a.ID]++
			}
		}
	}
	return uses
}
