package lir

// stackalloc: scalar replacement of non-escaping allocations (the alias
// analysis's escape verdicts cashed in). An object or constant-length array
// whose every use is a direct field/element access in its own block is
// invisible outside that block: the pass deletes the allocation, its bounds
// checks, and its stores, and rewrites its loads to the stored SSA values
// (zero constants for never-stored scalar slots — the runtime zeroes fresh
// allocations). The demoted site never reaches the machine allocator, which
// is both the cycle win (allocation + GC-clock charge gone) and the vmap win
// (fewer recorded stores; verify.Build elides the site's extent via the same
// escape verdicts, so the shifted heap layout stays checkable).
//
// Removing OpNewArray/OpNewObject and stores removes observable ops, so the
// strict translation validator answers Unverified at worst for this pass —
// never Rejected (a rejection needs paired integer-constant disagreement, and
// load hashes are never constants).

func init() {
	register(&PassInfo{
		Name: "stackalloc",
		Doc:  "demote non-escaping allocation sites to SSA values (scalar replacement; alias analysis proves the site local)",
		Run: func(f *Function, ctx *PassContext, _ map[string]int) error {
			runStackAlloc(f, ctx)
			runDCE(f)
			return nil
		},
		Traits: Traits{Mem: true},
	})
}

// maxDemoteLen bounds the constant array length stackalloc will demote; each
// element becomes one tracked slot.
const maxDemoteLen = 64

// allocPlan is one validated demotion: the site and the in-order rewrites.
type allocPlan struct {
	site *Value
	// loads maps each load user to its replacement (nil = zero constant of
	// the load's type); loadOrder fixes the program-order application
	// sequence. Every other user (stores, checks, the site) dies.
	loads     map[*Value]*Value
	loadOrder []*Value
	dead      []*Value
	arrLen    int64 // -1 for objects
}

func runStackAlloc(f *Function, ctx *PassContext) {
	fx := AnalyzeAlias(f, passStatic(ctx))
	// Use lists in program order (SSA has no def-use chains).
	users := map[*Value][]*Value{}
	phiUser := map[*Value]bool{}
	for _, b := range f.Blocks {
		for _, p := range b.Phis {
			for _, a := range p.Args {
				phiUser[a] = true
			}
		}
		for _, v := range b.Insns {
			for _, a := range v.Args {
				users[a] = append(users[a], v)
			}
		}
	}
	var plans []*allocPlan
	for _, b := range f.Blocks {
		for _, v := range b.Insns {
			if v.Op != OpNewArray && v.Op != OpNewObject {
				continue
			}
			if fx.Escapes(v) || phiUser[v] {
				continue
			}
			if p := planDemotion(v, users[v]); p != nil {
				plans = append(plans, p)
			}
		}
	}
	// A replaced load can itself be another plan's replacement (one demoted
	// site's load stored into another site); chase the chain so no removed
	// value is ever re-installed as an argument.
	replacedBy := map[*Value]*Value{}
	resolve := func(v *Value) *Value {
		for {
			r, ok := replacedBy[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	for _, p := range plans {
		if ctx != nil && ctx.Tracing() {
			ctx.Note("stackalloc.demote", NoteAnchor(p.site.Block, p.site),
				KV("uses", int64(len(p.dead)+len(p.loads))), KV("len", p.arrLen))
		}
		dead := map[*Value]bool{}
		for _, ld := range p.loadOrder {
			repl := p.loads[ld]
			if repl != nil {
				repl = resolve(repl)
				f.ReplaceUses(ld, repl)
				replacedBy[ld] = repl
				dead[ld] = true
				continue
			}
			// Never-stored scalar slot: the runtime zeroes fresh memory.
			if ld.Type == TFloat {
				replaceWithConstFloat(ld, 0)
			} else {
				replaceWithConstInt(ld, 0)
			}
		}
		for _, d := range p.dead {
			dead[d] = true
		}
		removeValues(f, dead)
	}
}

// planDemotion validates one allocation site against the single-block scalar
// replacement rules and, when every use checks out, simulates the block in
// program order to resolve each load. Returns nil when any use disqualifies
// the site.
func planDemotion(site *Value, uses []*Value) *allocPlan {
	isArr := site.Op == OpNewArray
	n := int64(-1)
	if isArr {
		c, ok := isConstInt(site.Args[0])
		if !ok || c < 0 || c > maxDemoteLen {
			return nil
		}
		n = c
	}
	// slotOf maps a use to its demoted slot; ok=false disqualifies.
	slotOf := func(u *Value) (int64, bool) {
		if u.Block != site.Block {
			return 0, false // single-block rule: simulation order is total
		}
		switch u.Op {
		case OpFieldLoad:
			return u.Slot, !isArr && u.Args[0] == site
		case OpFieldStore:
			return u.Slot, !isArr && u.Args[0] == site && u.Args[1] != site
		case OpArrLen:
			return 0, isArr && u.Args[0] == site
		case OpBoundsCheck, OpArrLoad, OpArrStore:
			if !isArr || u.Args[0] != site {
				return 0, false
			}
			if u.Op == OpArrStore && u.Args[2] == site {
				return 0, false
			}
			c, ok := isConstInt(u.Args[1])
			if !ok || c < 0 || c >= n {
				return 0, false
			}
			return c, true
		}
		return 0, false // call arg, return, throw, stored as a value, ...
	}
	for _, u := range uses {
		if _, ok := slotOf(u); !ok {
			return nil
		}
	}
	// Simulate in program order. Loads of a stored slot take that SSA value
	// (types must agree, per the strict validator's signature rules); loads
	// of a never-stored scalar slot take zero; ref slots must be stored
	// first (a null-ref constant has no TRef representation).
	p := &allocPlan{site: site, loads: map[*Value]*Value{}, arrLen: n}
	cur := map[int64]*Value{}
	seen := false
	for _, u := range site.Block.Insns {
		if u == site {
			seen = true
			continue
		}
		isUse := false
		for _, a := range u.Args {
			if a == site {
				isUse = true
				break
			}
		}
		if !isUse {
			continue
		}
		if !seen {
			return nil // a use before the def never executes meaningfully
		}
		slot, _ := slotOf(u)
		switch u.Op {
		case OpFieldStore:
			cur[slot] = u.Args[1]
			p.dead = append(p.dead, u)
		case OpArrStore:
			cur[slot] = u.Args[2]
			p.dead = append(p.dead, u)
		case OpFieldLoad, OpArrLoad:
			if v := cur[slot]; v != nil {
				if v.Type != u.Type {
					return nil
				}
				p.loads[u] = v
			} else {
				if u.Type == TRef {
					return nil
				}
				p.loads[u] = nil
			}
			p.loadOrder = append(p.loadOrder, u)
		case OpArrLen:
			lenConst := site.Args[0]
			if lenConst.Type != u.Type {
				return nil
			}
			p.loads[u] = lenConst
			p.loadOrder = append(p.loadOrder, u)
		case OpBoundsCheck:
			p.dead = append(p.dead, u)
		}
	}
	p.dead = append(p.dead, site)
	return p
}
