package lir

import (
	"math"
	"testing"

	"replayopt/internal/machine"
	"replayopt/internal/minic"
	"replayopt/internal/rt"
)

// Intrinsic execution: the JNI-math-to-intrinsic optimization (§3.5)
// replaces native calls with Intr instructions; every kind must compute the
// same value the native implementation would, directly in the executor.

func runIntrinsicProgram(t *testing.T, src string) (uint64, uint64) {
	t.Helper()
	prog, err := minic.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := O1()
	cfg.Passes = append(cfg.Passes, PassSpec{Name: "intrinsics"})
	code, err := Compile(prog, nil, cfg, nil, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// The intrinsics pass must have replaced at least one native call.
	intrs := 0
	for _, fn := range code.Fns {
		for i := range fn.Code {
			if fn.Code[i].Op == machine.Intr {
				intrs++
			}
		}
	}
	if intrs == 0 {
		t.Fatal("intrinsics pass replaced no native calls")
	}
	proc := rt.NewProcess(prog, rt.Config{})
	x := machine.NewExec(proc, code)
	x.MaxCycles = 100_000_000
	v, err := x.Call(prog.Entry, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, x.Cycles
}

func TestIntrinsicFloatKinds(t *testing.T) {
	v, _ := runIntrinsicProgram(t, `
func main() int {
	float a = sqrt(144.0);
	float b = sin(0.0);
	float c = cos(0.0);
	float d = log(exp(3.0));
	float e = pow(2.0, 10.0);
	float f = absf(-2.5);
	float g = floor(7.9);
	return ftoi((a + b + c + d + e + f + g) * 1000.0);
}`)
	want := (math.Sqrt(144) + math.Sin(0) + math.Cos(0) + math.Log(math.Exp(3)) +
		math.Pow(2, 10) + math.Abs(-2.5) + math.Floor(7.9)) * 1000
	if int64(v) != int64(want) {
		t.Errorf("intrinsic float chain = %d, want %d", int64(v), int64(want))
	}
}

func TestIntrinsicIntKinds(t *testing.T) {
	v, _ := runIntrinsicProgram(t, `
func main() int {
	return absi(-42) + mini(3, 9) + maxi(3, 9) + mini(-5, -2) + maxi(-5, -2);
}`)
	want := int64(42 + 3 + 9 + -5 + -2)
	if int64(v) != want {
		t.Errorf("intrinsic int chain = %d, want %d", int64(v), want)
	}
}

// TestIntrinsicsCheaperThanNativeCalls: the §3.5 motivation — an intrinsic
// avoids the managed-to-native transition, so the intrinsified binary must
// be strictly faster.
func TestIntrinsicsCheaperThanNativeCalls(t *testing.T) {
	src := `
func main() int {
	float acc = 0.0;
	for (int i = 0; i < 500; i = i + 1) {
		acc = acc + sqrt(itof(i)) + pow(1.001, itof(i % 10));
	}
	return ftoi(acc);
}`
	prog, err := minic.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	compile := func(withIntr bool) *machine.Program {
		cfg := O1()
		if withIntr {
			cfg.Passes = append(cfg.Passes, PassSpec{Name: "intrinsics"})
		}
		code, err := Compile(prog, nil, cfg, nil, nil)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return code
	}
	run := func(code *machine.Program) (uint64, uint64) {
		proc := rt.NewProcess(prog, rt.Config{})
		x := machine.NewExec(proc, code)
		x.MaxCycles = 1_000_000_000
		v, err := x.Call(prog.Entry, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return v, x.Cycles
	}
	vN, cN := run(compile(false))
	vI, cI := run(compile(true))
	if vN != vI {
		t.Fatalf("intrinsics changed the result: %d != %d", int64(vI), int64(vN))
	}
	if cI >= cN {
		t.Errorf("intrinsified binary not faster: %d vs %d cycles", cI, cN)
	}
}

// TestSizeMetricCountsAllFunctions: Size is the GA's tiebreak; it must grow
// with code and cover every function in the image.
func TestProgramSizeGrowsWithCode(t *testing.T) {
	p := machine.NewProgram()
	p.Fns[1] = &machine.Fn{Code: make([]machine.Insn, 10)}
	small := p.Size()
	p.Fns[2] = &machine.Fn{Code: make([]machine.Insn, 30)}
	if p.Size() <= small {
		t.Errorf("Size did not grow: %d -> %d", small, p.Size())
	}
}
