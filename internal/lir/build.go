package lir

import (
	"fmt"
	"sort"

	"replayopt/internal/dex"
	"replayopt/internal/hgraph"
)

// BuildSSA translates a method's HGraph into SSA form — the HGraph-to-LLVM-
// bitcode pass of §3.5. The translation inserts the runtime scaffolding the
// paper describes: explicit bounds checks before array accesses, and GC
// safepoint checks both at loop headers and at back-edge sources (the
// "increased amount of heap-related operations, e.g. checks for GC" that can
// make naively translated code slower than the Android baseline).
func BuildSSA(prog *dex.Program, id dex.MethodID) (*Function, error) {
	m := prog.Methods[id]
	g, err := hgraph.Build(prog, m)
	if err != nil {
		return nil, err
	}
	f := &Function{Prog: prog, Method: id, Name: m.Name}

	// 1. Mirror the CFG.
	bmap := map[*hgraph.Block]*Block{}
	for _, hb := range g.Blocks {
		lb := f.NewBlock()
		bmap[hb] = lb
		f.Blocks = append(f.Blocks, lb)
	}
	for _, hb := range g.Blocks {
		for _, s := range hb.Succs {
			AddEdge(bmap[hb], bmap[s])
		}
	}
	f.Recompute()

	// 2. Def sites per dex register.
	defs := map[int]map[*Block]bool{}
	for _, hb := range g.Blocks {
		lb := bmap[hb]
		for i := range hb.Insns {
			if w := hgraph.InsnDef(prog, &hb.Insns[i]); w >= 0 {
				if defs[w] == nil {
					defs[w] = map[*Block]bool{}
				}
				defs[w][lb] = true
			}
		}
	}
	// Parameters are defined at entry.
	entry := f.Blocks[0]
	params := make([]*Value, m.NumArgs)
	for i := 0; i < m.NumArgs; i++ {
		p := f.NewValue(OpParam, typeOfKind(m.Params[i]))
		p.Slot = int64(i)
		entry.Append(p)
		params[i] = p
		if defs[i] == nil {
			defs[i] = map[*Block]bool{}
		}
		defs[i][entry] = true
	}

	// 3. Phi placement at iterated dominance frontiers, in register order
	// (map iteration would make value numbering nondeterministic).
	df := f.dominanceFrontiers()
	phiReg := map[*Value]int{} // phi -> dex register it merges
	regs := make([]int, 0, len(defs))
	for reg := range defs {
		regs = append(regs, reg)
	}
	sort.Ints(regs)
	for _, reg := range regs {
		sites := defs[reg]
		work := make([]*Block, 0, len(sites))
		for b := range sites {
			work = append(work, b)
		}
		sort.Slice(work, func(i, j int) bool { return work[i].ID < work[j].ID })
		placed := map[*Block]bool{}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			// Deterministic frontier order: map iteration would scramble
			// phi placement (and therefore value numbering) across runs.
			front := make([]*Block, 0, len(df[b]))
			for d := range df[b] {
				front = append(front, d)
			}
			sort.Slice(front, func(i, j int) bool { return front[i].ID < front[j].ID })
			for _, d := range front {
				if placed[d] || len(d.Preds) < 2 {
					continue
				}
				placed[d] = true
				phi := f.NewValue(OpPhi, TInt)
				phi.Block = d
				phi.Args = make([]*Value, len(d.Preds))
				d.Phis = append(d.Phis, phi)
				phiReg[phi] = reg
				if !sites[d] {
					sites[d] = true
					work = append(work, d)
				}
			}
		}
	}

	// 4. Rename: dominator-tree DFS carrying the def environment.
	kids := f.domChildren()
	endDefs := map[*Block]map[int]*Value{} // defs live at block end
	tr := &translator{f: f, g: g, bmap: bmap, prog: prog}

	var rename func(lb *Block, env map[int]*Value) error
	rename = func(lb *Block, env map[int]*Value) error {
		cur := make(map[int]*Value, len(env))
		for k, v := range env {
			cur[k] = v
		}
		for _, phi := range lb.Phis {
			cur[phiReg[phi]] = phi
		}
		if lb == entry {
			for i, p := range params {
				cur[i] = p
			}
		}
		if err := tr.translateBlock(lb, cur); err != nil {
			return err
		}
		endDefs[lb] = cur
		for _, k := range kids[lb] {
			if err := rename(k, cur); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rename(entry, map[int]*Value{}); err != nil {
		return nil, err
	}

	// 5. Fill phi arguments from each predecessor's end environment.
	for _, lb := range f.Blocks {
		for _, phi := range lb.Phis {
			reg := phiReg[phi]
			for i, p := range lb.Preds {
				d := endDefs[p][reg]
				if d == nil {
					// The register is not defined on this path; the value
					// can never be observed there — use a zero constant.
					z := f.NewValue(OpConstInt, TInt)
					p.Append(z)
					d = z
				}
				phi.Args[i] = d
			}
			// Infer the phi type from its inputs.
			for _, a := range phi.Args {
				if a.Type != TInt {
					phi.Type = a.Type
					break
				}
			}
		}
	}
	prunePhis(f)
	return f, nil
}

// prunePhis removes trivial phis (all inputs identical or self-references).
func prunePhis(f *Function) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			kept := b.Phis[:0]
			for _, phi := range b.Phis {
				var uniq *Value
				trivial := true
				for _, a := range phi.Args {
					if a == phi {
						continue
					}
					if uniq == nil {
						uniq = a
					} else if uniq != a {
						trivial = false
						break
					}
				}
				if trivial && uniq != nil {
					f.ReplaceUses(phi, uniq)
					changed = true
					continue
				}
				kept = append(kept, phi)
			}
			b.Phis = kept
		}
	}
}

func typeOfKind(k dex.Kind) Type {
	switch k {
	case dex.KindFloat:
		return TFloat
	case dex.KindRef:
		return TRef
	case dex.KindVoid:
		return TVoid
	default:
		return TInt
	}
}

type translator struct {
	f    *Function
	g    *hgraph.Graph
	bmap map[*hgraph.Block]*Block
	prog *dex.Program
}

var lirAlu = map[dex.Op]Op{
	dex.OpAddInt: OpAdd, dex.OpSubInt: OpSub, dex.OpMulInt: OpMul,
	dex.OpDivInt: OpDiv, dex.OpRemInt: OpRem, dex.OpAndInt: OpAnd,
	dex.OpOrInt: OpOr, dex.OpXorInt: OpXor, dex.OpShlInt: OpShl,
	dex.OpShrInt:   OpShr,
	dex.OpAddFloat: OpFAdd, dex.OpSubFloat: OpFSub,
	dex.OpMulFloat: OpFMul, dex.OpDivFloat: OpFDiv,
}

var lirCond = map[dex.Op]Cond{
	dex.OpIfEq: CondEq, dex.OpIfNe: CondNe, dex.OpIfLt: CondLt,
	dex.OpIfLe: CondLe, dex.OpIfGt: CondGt, dex.OpIfGe: CondGe,
}

func (tr *translator) translateBlock(lb *Block, env map[int]*Value) error {
	// Reverse-map to the hgraph block.
	var hb *hgraph.Block
	for h, l := range tr.bmap {
		if l == lb {
			hb = h
			break
		}
	}
	if hb == nil {
		return fmt.Errorf("lir: no source block for b%d", lb.ID)
	}
	f := tr.f
	emit := func(v *Value) *Value {
		lb.AppendRaw(v)
		return v
	}
	// GC checks: at loop headers and at back-edge sources (§3.5).
	needGC := hb.LoopHead == hb && hb.LoopDepth > 0
	if !needGC {
		for _, s := range hb.Succs {
			if tr.g.Dominates(s, hb) {
				needGC = true // back-edge source
				break
			}
		}
	}
	if needGC {
		emit(f.NewValue(OpGCCheck, TVoid))
	}

	for i := range hb.Insns {
		in := &hb.Insns[i]
		switch in.Op {
		case dex.OpNop:

		case dex.OpConstInt:
			v := emit(f.NewValue(OpConstInt, TInt))
			v.Imm = in.Imm
			env[in.A] = v
		case dex.OpConstFloat:
			v := emit(f.NewValue(OpConstFloat, TFloat))
			v.F = in.F
			env[in.A] = v
		case dex.OpMove:
			env[in.A] = env[in.B]

		case dex.OpAddInt, dex.OpSubInt, dex.OpMulInt, dex.OpDivInt, dex.OpRemInt,
			dex.OpAndInt, dex.OpOrInt, dex.OpXorInt, dex.OpShlInt, dex.OpShrInt:
			env[in.A] = emit(f.NewValue(lirAlu[in.Op], TInt, env[in.B], env[in.C]))
		case dex.OpAddFloat, dex.OpSubFloat, dex.OpMulFloat, dex.OpDivFloat:
			env[in.A] = emit(f.NewValue(lirAlu[in.Op], TFloat, env[in.B], env[in.C]))
		case dex.OpNegInt:
			env[in.A] = emit(f.NewValue(OpNeg, TInt, env[in.B]))
		case dex.OpNegFloat:
			env[in.A] = emit(f.NewValue(OpFNeg, TFloat, env[in.B]))
		case dex.OpIntToFloat:
			env[in.A] = emit(f.NewValue(OpI2F, TFloat, env[in.B]))
		case dex.OpFloatToInt:
			env[in.A] = emit(f.NewValue(OpF2I, TInt, env[in.B]))
		case dex.OpCmpFloat:
			env[in.A] = emit(f.NewValue(OpFCmp, TInt, env[in.B], env[in.C]))

		case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfLe, dex.OpIfGt, dex.OpIfGe:
			br := f.NewValue(OpBranch, TVoid, env[in.B], env[in.C])
			br.Cond = lirCond[in.Op]
			emit(br)
		case dex.OpGoto:
			emit(f.NewValue(OpJump, TVoid))

		case dex.OpNewArrayInt, dex.OpNewArrayFloat, dex.OpNewArrayRef:
			kind := dex.KindInt
			if in.Op == dex.OpNewArrayFloat {
				kind = dex.KindFloat
			} else if in.Op == dex.OpNewArrayRef {
				kind = dex.KindRef
			}
			v := emit(f.NewValue(OpNewArray, TRef, env[in.B]))
			v.Sym = int(kind)
			// Allocation-site key, stable across inlining: the declaring
			// method and original bytecode pc (same keying as call sites).
			v.Imm = int64(hb.StartPC + i)
			v.Slot = int64(tr.f.Method)
			env[in.A] = v
		case dex.OpArrayLen:
			env[in.A] = emit(f.NewValue(OpArrLen, TInt, env[in.B]))

		case dex.OpALoadInt, dex.OpALoadFloat, dex.OpALoadRef:
			emit(f.NewValue(OpBoundsCheck, TVoid, env[in.B], env[in.C]))
			t := TInt
			if in.Op == dex.OpALoadFloat {
				t = TFloat
			} else if in.Op == dex.OpALoadRef {
				t = TRef
			}
			env[in.A] = emit(f.NewValue(OpArrLoad, t, env[in.B], env[in.C]))
		case dex.OpAStoreInt, dex.OpAStoreFloat, dex.OpAStoreRef:
			emit(f.NewValue(OpBoundsCheck, TVoid, env[in.B], env[in.C]))
			emit(f.NewValue(OpArrStore, TVoid, env[in.B], env[in.C], env[in.A]))

		case dex.OpNewInstance:
			v := emit(f.NewValue(OpNewObject, TRef))
			v.Sym = in.Sym
			v.Imm = int64(hb.StartPC + i)
			v.Slot = int64(tr.f.Method)
			env[in.A] = v
		case dex.OpFLoadInt, dex.OpFLoadFloat, dex.OpFLoadRef:
			t := TInt
			if in.Op == dex.OpFLoadFloat {
				t = TFloat
			} else if in.Op == dex.OpFLoadRef {
				t = TRef
			}
			v := emit(f.NewValue(OpFieldLoad, t, env[in.B]))
			v.Slot = in.Imm
			env[in.A] = v
		case dex.OpFStoreInt, dex.OpFStoreFloat, dex.OpFStoreRef:
			v := emit(f.NewValue(OpFieldStore, TVoid, env[in.B], env[in.A]))
			v.Slot = in.Imm

		case dex.OpSLoadInt, dex.OpSLoadFloat, dex.OpSLoadRef:
			t := TInt
			if in.Op == dex.OpSLoadFloat {
				t = TFloat
			} else if in.Op == dex.OpSLoadRef {
				t = TRef
			}
			v := emit(f.NewValue(OpStaticLoad, t))
			v.Slot = in.Imm
			env[in.A] = v
		case dex.OpSStoreInt, dex.OpSStoreFloat, dex.OpSStoreRef:
			v := emit(f.NewValue(OpStaticStore, TVoid, env[in.A]))
			v.Slot = in.Imm

		case dex.OpInvokeStatic, dex.OpInvokeVirtual:
			callee := tr.prog.Methods[in.Sym]
			args := make([]*Value, len(in.Args))
			for j, r := range in.Args {
				args[j] = env[r]
			}
			op := OpCallStatic
			if in.Op == dex.OpInvokeVirtual {
				op = OpCallVirtual
			}
			v := emit(f.NewValue(op, typeOfKind(callee.Ret), args...))
			v.Sym = in.Sym
			// Type-profile site key, stable across inlining: the declaring
			// method and original bytecode pc.
			v.Imm = int64(hb.StartPC + i)
			v.Slot = int64(tr.f.Method)
			if callee.Ret != dex.KindVoid {
				env[in.A] = v
			}
		case dex.OpInvokeNative:
			nt := tr.prog.Natives[in.Sym]
			args := make([]*Value, len(in.Args))
			for j, r := range in.Args {
				args[j] = env[r]
			}
			v := emit(f.NewValue(OpCallNative, typeOfKind(nt.Ret), args...))
			v.Sym = in.Sym
			if nt.Ret != dex.KindVoid {
				env[in.A] = v
			}

		case dex.OpReturn:
			emit(f.NewValue(OpReturn, TVoid, env[in.A]))
		case dex.OpReturnVoid:
			emit(f.NewValue(OpReturn, TVoid))
		case dex.OpThrow:
			emit(f.NewValue(OpThrow, TVoid, env[in.A]))

		default:
			return fmt.Errorf("lir: untranslatable opcode %s", in.Op)
		}
	}
	// Blocks that fall through need an explicit jump terminator in SSA.
	if lb.Term() == nil {
		lb.AppendRaw(tr.f.NewValue(OpJump, TVoid))
	}
	return nil
}
