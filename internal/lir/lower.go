package lir

import (
	"fmt"

	"replayopt/internal/machine"
	"replayopt/internal/rt"
)

// LowerOpts control instruction selection (the llc side of the toolchain).
type LowerOpts struct {
	FusedAddressing bool // indexed load/store forms for array accesses
	Machine         machine.LowerOpts
}

// Lower translates SSA to machine code and runs the machine passes.
func Lower(f *Function, opts LowerOpts) (*machine.Fn, error) {
	prunePhis(f) // single-pred phis cannot be lowered; passes may create them
	f.splitCriticalEdges()
	f.Recompute()
	lo := &ssaLowerer{f: f, opts: opts, vreg: map[*Value]int{}, starts: map[*Block]int{}}
	m := f.Prog.Methods[f.Method]
	lo.nextReg = m.NumArgs
	fn, err := lo.lower()
	if err != nil {
		return nil, err
	}
	if err := machine.Finalize(fn, m.NumArgs, opts.Machine); err != nil {
		return nil, err
	}
	return fn, nil
}

// splitCriticalEdges inserts empty blocks on edges from multi-successor
// blocks to multi-predecessor blocks, preserving phi argument positions.
func (f *Function) splitCriticalEdges() {
	var added []*Block
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for i, s := range b.Succs {
			if len(s.Preds) < 2 {
				continue
			}
			e := f.NewBlock()
			e.AppendRaw(f.NewValue(OpJump, TVoid))
			e.Succs = []*Block{s}
			e.Preds = []*Block{b}
			b.Succs[i] = e
			// Keep the phi argument index: replace b with e in s.Preds.
			for j, p := range s.Preds {
				if p == b {
					s.Preds[j] = e
					break
				}
			}
			added = append(added, e)
		}
	}
	f.Blocks = append(f.Blocks, added...)
}

type ssaLowerer struct {
	f       *Function
	opts    LowerOpts
	code    []machine.Insn
	vreg    map[*Value]int
	nextReg int
	starts  map[*Block]int
	fixups  []struct {
		pc     int
		target *Block
	}
}

func (lo *ssaLowerer) reg(v *Value) int {
	if r, ok := lo.vreg[v]; ok {
		return r
	}
	if v.Op == OpParam {
		lo.vreg[v] = int(v.Slot)
		return int(v.Slot)
	}
	r := lo.nextReg
	lo.nextReg++
	lo.vreg[v] = r
	return r
}

func (lo *ssaLowerer) temp() int {
	r := lo.nextReg
	lo.nextReg++
	return r
}

func (lo *ssaLowerer) emit(in machine.Insn) int {
	lo.code = append(lo.code, in)
	return len(lo.code) - 1
}

func (lo *ssaLowerer) jumpTo(b *Block) {
	pc := lo.emit(machine.Insn{Op: machine.Jmp})
	lo.fixups = append(lo.fixups, struct {
		pc     int
		target *Block
	}{pc, b})
}

var mALU = map[Op]machine.Op{
	OpAdd: machine.Add, OpSub: machine.Sub, OpMul: machine.Mul,
	OpDiv: machine.Div, OpRem: machine.Rem, OpAnd: machine.And,
	OpOr: machine.Or, OpXor: machine.Xor, OpShl: machine.Shl, OpShr: machine.Shr,
	OpFAdd: machine.FAdd, OpFSub: machine.FSub, OpFMul: machine.FMul,
	OpFDiv: machine.FDiv,
}

var mCond = map[Cond]machine.Cond{
	CondEq: machine.CondEq, CondNe: machine.CondNe, CondLt: machine.CondLt,
	CondLe: machine.CondLe, CondGt: machine.CondGt, CondGe: machine.CondGe,
}

var mHint = map[Hint]machine.Hint{
	HintNone: machine.HintNone, HintTaken: machine.HintTaken, HintNotTaken: machine.HintNotTaken,
}

func (lo *ssaLowerer) lower() (*machine.Fn, error) {
	f := lo.f
	// Pre-assign phi registers so edge copies know their destinations.
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			lo.reg(phi)
		}
	}
	lo.coalescePhis()
	for bi, b := range f.Blocks {
		lo.starts[b] = len(lo.code)
		for _, v := range b.Insns {
			term := v.IsTerminator()
			if term {
				// Phi moves for jump successors go before the jump; for
				// branches the edges were split, so successors with phis
				// have single preds handled there.
				if v.Op == OpJump && len(b.Succs) == 1 {
					lo.emitPhiMoves(b, b.Succs[0])
				}
			}
			if err := lo.lowerValue(b, bi, v); err != nil {
				return nil, err
			}
		}
		if b.Term() == nil {
			return nil, fmt.Errorf("lir: block b%d missing terminator in %s", b.ID, f.Name)
		}
	}
	for _, fx := range lo.fixups {
		lo.code[fx.pc].Imm = int64(lo.starts[fx.target])
	}
	return &machine.Fn{Method: f.Method, NumRegs: lo.nextReg, Code: lo.code}, nil
}

// coalescePhis assigns a phi's register to arguments whose copies are
// provably removable, eliminating most per-iteration phi moves (what a real
// allocator's copy coalescing does). An argument a of phi p (along the edge
// from pred B) may share p's register when:
//
//   - a is used only by p (so clobbering a's register cannot break others),
//   - a is defined in B itself (so p's value is not overwritten earlier on
//     some longer path), and
//   - nothing after a's definition in B reads p (the classic lost-copy
//     hazard: writing a into p's register would corrupt those reads).
func (lo *ssaLowerer) coalescePhis() {
	uses := lo.f.UseCounts()
	for _, b := range lo.f.Blocks {
		for _, phi := range b.Phis {
			// If a sibling phi consumes this phi's old value, its edge move
			// reads the register after a coalesced argument would have
			// clobbered it (the swap/lost-copy problem across phis): skip.
			consumedBySibling := false
			for _, q := range b.Phis {
				if q == phi {
					continue
				}
				for _, qa := range q.Args {
					if qa == phi {
						consumedBySibling = true
					}
				}
			}
			if consumedBySibling {
				continue
			}
			preg := lo.reg(phi)
			for i, a := range phi.Args {
				if a.Op == OpPhi || a.Op == OpParam || uses[a.ID] != 1 {
					continue
				}
				if _, assigned := lo.vreg[a]; assigned {
					continue
				}
				pred := b.Preds[i]
				if a.Block != pred {
					continue
				}
				hazard := false
				seen := false
				for _, v := range pred.Insns {
					if v == a {
						seen = true
						continue
					}
					if !seen {
						continue
					}
					for _, arg := range v.Args {
						if arg == phi {
							hazard = true
							break
						}
					}
					if hazard {
						break
					}
				}
				if hazard {
					continue
				}
				lo.vreg[a] = preg
			}
		}
	}
}

// emitPhiMoves materializes the parallel copies for the edge from -> to.
func (lo *ssaLowerer) emitPhiMoves(from, to *Block) {
	idx := to.PredIndex(from)
	if idx < 0 || len(to.Phis) == 0 {
		return
	}
	type mv struct{ dst, src int }
	var pending []mv
	for _, phi := range to.Phis {
		src := phi.Args[idx]
		d := lo.reg(phi)
		s := lo.reg(src)
		if d != s {
			pending = append(pending, mv{d, s})
		}
	}
	// Sequentialize the parallel copy: emit moves whose destination is not
	// a pending source; break cycles with a temp.
	for len(pending) > 0 {
		emitted := false
		for i, m := range pending {
			isSrc := false
			for j, o := range pending {
				if j != i && o.src == m.dst {
					isSrc = true
					break
				}
			}
			if !isSrc {
				lo.emit(machine.Insn{Op: machine.Mov, A: m.dst, B: m.src})
				pending = append(pending[:i], pending[i+1:]...)
				emitted = true
				break
			}
		}
		if !emitted {
			// Cycle: rotate through a temp.
			t := lo.temp()
			m := pending[0]
			lo.emit(machine.Insn{Op: machine.Mov, A: t, B: m.src})
			for j := range pending {
				if pending[j].src == m.src {
					pending[j].src = t
				}
			}
		}
	}
}

func (lo *ssaLowerer) lowerValue(b *Block, blockIdx int, v *Value) error {
	f := lo.f
	A := func() int { return lo.reg(v) }
	arg := func(i int) int { return lo.reg(v.Args[i]) }

	switch v.Op {
	case OpParam:
		lo.reg(v) // pinned to its slot

	case OpConstInt:
		lo.emit(machine.Insn{Op: machine.Ldi, A: A(), Imm: v.Imm})
	case OpConstFloat:
		lo.emit(machine.Insn{Op: machine.Ldf, A: A(), F: v.F})
	case OpPhi:
		// Handled by edge moves.

	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv:
		mop := mALU[v.Op]
		if v.NoTrap {
			// rangecheckelim proved the divisor nonzero: select the
			// unguarded machine divide.
			switch v.Op {
			case OpDiv:
				mop = machine.DivU
			case OpRem:
				mop = machine.RemU
			}
		}
		lo.emit(machine.Insn{Op: mop, A: A(), B: arg(0), C: arg(1)})
	case OpNeg:
		lo.emit(machine.Insn{Op: machine.Neg, A: A(), B: arg(0)})
	case OpFNeg:
		lo.emit(machine.Insn{Op: machine.FNeg, A: A(), B: arg(0)})
	case OpI2F:
		lo.emit(machine.Insn{Op: machine.I2F, A: A(), B: arg(0)})
	case OpF2I:
		lo.emit(machine.Insn{Op: machine.F2I, A: A(), B: arg(0)})
	case OpFCmp:
		lo.emit(machine.Insn{Op: machine.FCmp, A: A(), B: arg(0), C: arg(1)})

	case OpArrLen:
		lo.emit(machine.Insn{Op: machine.ArrLen, A: A(), B: arg(0)})
	case OpBoundsCheck:
		lo.emit(machine.Insn{Op: machine.Bound, B: arg(0), C: arg(1)})
	case OpArrLoad:
		lo.arrayAccess(machine.Load, A(), arg(0), arg(1))
	case OpArrStore:
		lo.arrayAccess(machine.Store, arg(2), arg(0), arg(1))
	case OpFieldLoad:
		lo.emit(machine.Insn{Op: machine.Load, A: A(), B: arg(0), C: -1, Disp: 8 + v.Slot*8})
	case OpFieldStore:
		lo.emit(machine.Insn{Op: machine.Store, A: arg(1), B: arg(0), C: -1, Disp: 8 + v.Slot*8})
	case OpStaticLoad:
		t := lo.temp()
		lo.emit(machine.Insn{Op: machine.Ldi, A: t, Imm: int64(rt.StaticsBase) + v.Slot*8})
		lo.emit(machine.Insn{Op: machine.Load, A: A(), B: t, C: -1})
	case OpStaticStore:
		t := lo.temp()
		lo.emit(machine.Insn{Op: machine.Ldi, A: t, Imm: int64(rt.StaticsBase) + v.Slot*8})
		lo.emit(machine.Insn{Op: machine.Store, A: arg(0), B: t, C: -1})
	case OpNewArray:
		lo.emit(machine.Insn{Op: machine.NewArr, A: A(), B: arg(0), Sym: v.Sym})
	case OpNewObject:
		lo.emit(machine.Insn{Op: machine.NewObj, A: A(), Sym: v.Sym})
	case OpClassOf:
		t := lo.temp()
		lo.emit(machine.Insn{Op: machine.Load, A: t, B: arg(0), C: -1})
		lo.emit(machine.Insn{Op: machine.Shr, A: A(), B: t, C: -1, Disp: 8})

	case OpCallStatic, OpCallVirtual, OpCallNative:
		args := make([]int, len(v.Args))
		for i := range v.Args {
			args[i] = arg(i)
		}
		dest := -1
		if v.Type != TVoid {
			dest = A()
		}
		op := machine.Call
		if v.Op == OpCallVirtual {
			op = machine.CallV
		} else if v.Op == OpCallNative {
			op = machine.CallN
		}
		lo.emit(machine.Insn{Op: op, A: dest, Sym: v.Sym, Args: args})
	case OpIntrinsic:
		args := make([]int, len(v.Args))
		for i := range v.Args {
			args[i] = arg(i)
		}
		lo.emit(machine.Insn{Op: machine.Intr, A: A(), Sym: v.Sym, Args: args})

	case OpGCCheck:
		lo.emit(machine.Insn{Op: machine.GCChk})

	case OpBranch:
		pc := lo.emit(machine.Insn{Op: machine.Br, Cond: mCond[v.Cond], B: arg(0), C: arg(1), Hint: mHint[v.Hint]})
		lo.fixups = append(lo.fixups, struct {
			pc     int
			target *Block
		}{pc, b.Succs[0]})
		if blockIdx+1 >= len(f.Blocks) || f.Blocks[blockIdx+1] != b.Succs[1] {
			lo.jumpTo(b.Succs[1])
		}
	case OpJump:
		if blockIdx+1 >= len(f.Blocks) || f.Blocks[blockIdx+1] != b.Succs[0] {
			lo.jumpTo(b.Succs[0])
		}
	case OpReturn:
		if len(v.Args) > 0 {
			lo.emit(machine.Insn{Op: machine.Ret, A: arg(0)})
		} else {
			lo.emit(machine.Insn{Op: machine.RetVoid})
		}
	case OpThrow:
		lo.emit(machine.Insn{Op: machine.Throw, A: arg(0)})

	default:
		return fmt.Errorf("lir: cannot lower %s", v.Op)
	}
	return nil
}

func (lo *ssaLowerer) arrayAccess(op machine.Op, val, base, idx int) {
	if lo.opts.FusedAddressing {
		lo.emit(machine.Insn{Op: op, A: val, B: base, C: idx, Disp: 8})
		return
	}
	t1 := lo.temp()
	t2 := lo.temp()
	lo.emit(machine.Insn{Op: machine.Shl, A: t1, B: idx, C: -1, Disp: 3})
	lo.emit(machine.Insn{Op: machine.Add, A: t2, B: base, C: t1})
	lo.emit(machine.Insn{Op: op, A: val, B: t2, C: -1, Disp: 8})
}
