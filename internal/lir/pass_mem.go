package lir

import (
	"sort"

	"replayopt/internal/dex"
	"replayopt/internal/sa"
)

// Memory optimization passes: store-to-load forwarding, dead store
// elimination, loop-invariant code motion, bounds-check elimination, and the
// paper's custom post-loop GC-check elimination (§3.5). The safe variants are
// alias-aware: they consult the Andersen points-to facts (alias.go) and the
// interprocedural mod/ref summaries (internal/sa/pts, read through
// PassContext.Static) to look past accesses and calls that provably touch
// disjoint memory, degrading to kind/slot matching when facts are missing.
// The deliberately unsound alias-blind dse variant — a Fig. 1 wrong-output
// source the verify stage must catch — is kept intact, facts or not.

func init() { registerMemPasses() }

func registerMemPasses() {
	register(&PassInfo{
		Name: "storeforward",
		Doc:  "forward stored values to later loads of the same location (per block)",
		Run: func(f *Function, ctx *PassContext, _ map[string]int) error {
			runStoreForward(f, ctx)
			runDCE(f)
			return nil
		},
		Traits: Traits{Mem: true},
	})
	register(&PassInfo{
		Name: "dse",
		Doc:  "remove stores overwritten before any possible read (alias-aware: only may-alias loads and calls whose ref set covers the location block removal)",
		Params: []ParamSpec{
			// alias-blind=1 matches stores by slot/shape only, ignoring
			// whether the base objects alias — removes stores other code
			// still reads (a deliberate Fig. 1 wrong-output source).
			{Name: "alias-blind", Default: 0, Min: 0, Max: 1, Unsafe: true},
		},
		Run:    runDSE,
		Traits: Traits{Mem: true},
	})
	register(&PassInfo{
		Name: "licm",
		Doc:  "hoist loop-invariant computation to the preheader",
		Params: []ParamSpec{
			// loads=1 also hoists memory loads past loop stores that provably
			// never alias the loaded location and calls whose interprocedural
			// mod set misses it; without alias facts this degrades to loops
			// containing no stores or calls at all. Aggressive either way:
			// hoisting may introduce a trap for zero-trip loops.
			{Name: "loads", Default: 0, Min: 0, Max: 1},
			// unsafe=1 hoists loads ignoring stores and calls in the loop,
			// reading stale values.
			{Name: "unsafe", Default: 0, Min: 0, Max: 1, Unsafe: true},
		},
		Run:    runLICM,
		Traits: Traits{CFG: true, Mem: true}, // inserts preheaders, moves loads
	})
	register(&PassInfo{
		Name: "bce",
		Doc:  "remove provably redundant bounds checks",
		Params: []ParamSpec{
			// aggressive=1 removes every bounds check, trusting the
			// program to be in-bounds (silent corruption if it is not).
			{Name: "aggressive", Default: 0, Min: 0, Max: 1, Unsafe: true},
		},
		Run:    runBCE,
		Traits: Traits{CFG: true, Mem: true}, // calls Recompute, removes bounds checks
	})
	register(&PassInfo{
		Name: "gccheckelim",
		Doc:  "custom pass (§3.5): deduplicate GC safepoint checks within each loop; with the effect analysis, drop them entirely from allocation-free loops",
		Run: func(f *Function, ctx *PassContext, _ map[string]int) error {
			runGCCheckElim(f, ctx)
			return nil
		},
		Traits: Traits{CFG: true, Mem: true}, // calls Recompute, removes safepoints
	})
}

// locKey identifies an abstract memory location.
type locKey struct {
	kind Op // OpArrStore/OpFieldStore/OpStaticStore family marker
	base *Value
	idx  *Value
	slot int64
}

func loadKey(v *Value) (locKey, bool) {
	switch v.Op {
	case OpArrLoad:
		return locKey{kind: OpArrStore, base: v.Args[0], idx: v.Args[1]}, true
	case OpFieldLoad:
		return locKey{kind: OpFieldStore, base: v.Args[0], slot: v.Slot}, true
	case OpStaticLoad:
		return locKey{kind: OpStaticStore, slot: v.Slot}, true
	}
	return locKey{}, false
}

func storeKey(v *Value) (locKey, *Value, bool) {
	switch v.Op {
	case OpArrStore:
		return locKey{kind: OpArrStore, base: v.Args[0], idx: v.Args[1]}, v.Args[2], true
	case OpFieldStore:
		return locKey{kind: OpFieldStore, base: v.Args[0], slot: v.Slot}, v.Args[1], true
	case OpStaticStore:
		return locKey{kind: OpStaticStore, slot: v.Slot}, v.Args[0], true
	}
	return locKey{}, nil, false
}

func isCall(v *Value) bool {
	switch v.Op {
	case OpCallStatic, OpCallVirtual, OpCallNative:
		return true
	}
	return false
}

// passStatic unwraps the interprocedural analysis a pass context carries.
func passStatic(ctx *PassContext) *sa.Result {
	if ctx == nil {
		return nil
	}
	return ctx.Static
}

// keyLoc abstracts a locKey to the interprocedural location vocabulary.
func keyLoc(k locKey) sa.MemLoc {
	switch k.kind {
	case OpFieldStore:
		return sa.MemLoc{Kind: sa.LocField, Slot: k.slot}
	case OpStaticStore:
		return sa.MemLoc{Kind: sa.LocGlobal, Slot: k.slot}
	}
	return sa.MemLoc{Kind: sa.LocElem}
}

// keysMayAlias reports whether two abstract locations can overlap, using the
// points-to facts to separate bases and constant indices. Conservative
// without converged facts (beyond kind/slot/base identity).
func keysMayAlias(fx *AliasFacts, a, b locKey) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case OpStaticStore:
		return a.slot == b.slot
	case OpFieldStore:
		if a.slot != b.slot {
			return false
		}
	default: // OpArrStore
		if a.base == b.base && a.idx != nil && b.idx != nil &&
			a.idx.Op == OpConstInt && b.idx.Op == OpConstInt && a.idx.Imm != b.idx.Imm {
			return false
		}
	}
	if a.base == b.base {
		return true
	}
	if fx == nil || !fx.Converged() {
		return true
	}
	return fx.overlap(fx.pts(a.base), fx.pts(b.base))
}

// runStoreForward forwards stored (or previously loaded) values to later
// loads of the same location within a block, invalidating on stores to
// may-aliasing locations and on calls whose interprocedural mod set covers an
// available location (every call, when summaries are missing).
func runStoreForward(f *Function, ctx *PassContext) {
	fx := AnalyzeAlias(f, passStatic(ctx))
	for _, b := range f.Blocks {
		avail := map[locKey]*Value{}
		dead := map[*Value]bool{}
		for _, v := range b.Insns {
			if isCall(v) {
				mod := fx.ModifiedBy(v)
				if mod.Top {
					avail = map[locKey]*Value{} // the callee may write anything
				} else {
					for ek := range avail {
						if mod.Contains(keyLoc(ek)) {
							delete(avail, ek)
						}
					}
				}
				continue
			}
			if k, val, ok := storeKey(v); ok {
				// A store invalidates exactly the locations it may alias;
				// the stored location itself becomes available.
				for ek := range avail {
					if ek != k && keysMayAlias(fx, ek, k) {
						delete(avail, ek)
					}
				}
				avail[k] = val
				continue
			}
			if k, ok := loadKey(v); ok {
				if prev, hit := avail[k]; hit && prev.Type == v.Type {
					if ctx != nil && ctx.Tracing() {
						ctx.Note("storeforward.forward", NoteAnchor(b, v), KV("from", int64(prev.ID)))
					}
					f.ReplaceUses(v, prev)
					dead[v] = true
				} else {
					avail[k] = v // later identical loads reuse this one
				}
			}
		}
		removeValues(f, dead)
	}
}

// runDSE removes a store when a later store in the same block definitely
// overwrites it with no intervening read: a may-alias load, or a call whose
// interprocedural ref set covers the location (every call, when summaries are
// missing). The alias-blind variant matches by shape only (ignoring base
// identity) and skips the read check for loads whose index differs
// syntactically — both unsound.
func runDSE(f *Function, ctx *PassContext, params map[string]int) error {
	aliasBlind := params["alias-blind"] == 1
	fx := AnalyzeAlias(f, passStatic(ctx))
	for _, b := range f.Blocks {
		dead := map[*Value]bool{}
		insns := b.Insns
		for i := 0; i < len(insns); i++ {
			k, _, ok := storeKey(insns[i])
			if !ok {
				continue
			}
		scan:
			for j := i + 1; j < len(insns); j++ {
				w := insns[j]
				if isCall(w) {
					ref := fx.ReadBy(w)
					if ref.Top || ref.Contains(keyLoc(k)) {
						break // the callee may read the location
					}
					continue
				}
				if lk, isLoad := loadKey(w); isLoad {
					if aliasBlind {
						// BUG: only exact syntactic matches count as reads.
						if lk == k {
							break scan
						}
						continue
					}
					// Safe: a load the facts cannot separate may read it.
					if keysMayAlias(fx, lk, k) {
						break scan
					}
					continue
				}
				if wk, _, isStore := storeKey(w); isStore {
					if wk == k {
						dead[insns[i]] = true // exactly overwritten
						break scan
					}
					if aliasBlind && wk.kind == k.kind && wk.slot == k.slot {
						// BUG: "overwritten" by a store to a different base.
						dead[insns[i]] = true
						break scan
					}
					continue
				}
				if w.IsTerminator() {
					break scan
				}
			}
			if dead[insns[i]] && ctx != nil && ctx.Tracing() {
				ctx.Note("dse.remove", NoteAnchor(b, insns[i]), KV("alias-blind", b2i(aliasBlind)))
			}
		}
		removeValues(f, dead)
	}
	return nil
}

// ensurePreheader returns the unique block through which the loop is
// entered, creating one on the entering edge if needed. Returns nil when the
// loop has multiple entering edges (we skip such loops).
func ensurePreheader(f *Function, l *Loop) *Block {
	var enters []*Block
	for _, p := range l.Head.Preds {
		if !l.Blocks[p] {
			enters = append(enters, p)
		}
	}
	if len(enters) != 1 {
		return nil
	}
	p := enters[0]
	if len(p.Succs) == 1 {
		return p
	}
	// Split the entering edge.
	ph := f.NewBlock()
	ph.AppendRaw(f.NewValue(OpJump, TVoid))
	for i, s := range p.Succs {
		if s == l.Head {
			p.Succs[i] = ph
			break
		}
	}
	ph.Preds = []*Block{p}
	ph.Succs = []*Block{l.Head}
	for i, pr := range l.Head.Preds {
		if pr == p {
			l.Head.Preds[i] = ph // keep the phi argument index
			break
		}
	}
	f.Blocks = append(f.Blocks, ph)
	f.Recompute()
	return ph
}

func runLICM(f *Function, ctx *PassContext, params map[string]int) error {
	hoistLoads := params["loads"] == 1
	unsafe := params["unsafe"] == 1
	f.Recompute()
	fx := AnalyzeAlias(f, passStatic(ctx))
	for _, l := range f.Loops() {
		ph := ensurePreheader(f, l)
		if ph == nil {
			continue
		}
		// Loop memory summary for load hoisting: every store and call the
		// loop (including nested loops) can execute, in program order.
		var loopStores, loopCalls []*Value
		for _, b := range f.Blocks {
			if !l.Blocks[b] {
				continue
			}
			for _, v := range b.Insns {
				if _, _, ok := storeKey(v); ok {
					loopStores = append(loopStores, v)
				}
				if isCall(v) {
					loopCalls = append(loopCalls, v)
				}
			}
		}
		// loadStable reports that no loop store may alias the load and no
		// loop call's interprocedural mod set covers its location, so the
		// loaded value is invariant across iterations. OpArrLen reads only
		// the immutable length header — stores cannot change it.
		loadStable := func(v *Value) bool {
			if v.Op == OpArrLen {
				return true
			}
			loc, ok := fx.Loc(v)
			if !ok {
				return false
			}
			for _, s := range loopStores {
				if fx.MayAlias(v, s) {
					return false
				}
			}
			for _, c := range loopCalls {
				mod := fx.ModifiedBy(c)
				if mod.Top || mod.Contains(loc) {
					return false
				}
			}
			return true
		}
		inLoop := func(v *Value) bool {
			return v.Block != nil && l.Blocks[v.Block]
		}
		invariant := func(v *Value) bool {
			for _, a := range v.Args {
				if inLoop(a) {
					return false
				}
			}
			return true
		}
		for changed := true; changed; {
			changed = false
			// Deterministic block order (map iteration order varies).
			for _, b := range f.Blocks {
				if !l.Blocks[b] {
					continue
				}
				var moved []*Value
				for _, v := range b.Body() {
					hoistable := v.IsPure() && v.Op != OpPhi && v.Op != OpParam
					if !hoistable && (hoistLoads || unsafe) {
						switch v.Op {
						case OpArrLoad, OpFieldLoad, OpStaticLoad, OpArrLen:
							hoistable = unsafe || loadStable(v)
						}
					}
					if hoistable && invariant(v) {
						moved = append(moved, v)
					}
				}
				if len(moved) > 0 {
					if ctx != nil && ctx.Tracing() {
						for _, v := range moved {
							ctx.Note("licm.hoist", NoteAnchor(b, v),
								KV("to", int64(ph.ID)), KV("depth", int64(l.Depth)))
						}
					}
					dead := map[*Value]bool{}
					for _, v := range moved {
						dead[v] = true
					}
					removeValues(f, dead)
					for _, v := range moved {
						ph.Append(v)
					}
					changed = true
				}
			}
		}
	}
	return nil
}

// runBCE removes bounds checks that are dominated by an identical check
// (GVN-style) or guarded by the canonical loop pattern
// `for i = 0; i < arr.length; i++`; the aggressive variant removes all of
// them.
func runBCE(f *Function, ctx *PassContext, params map[string]int) error {
	f.Recompute()
	if params["aggressive"] == 1 {
		dead := map[*Value]bool{}
		for _, b := range f.Blocks {
			for _, v := range b.Insns {
				if v.Op == OpBoundsCheck {
					if ctx != nil && ctx.Tracing() {
						ctx.Note("bce.aggressive", NoteAnchor(b, v))
					}
					dead[v] = true
				}
			}
		}
		removeValues(f, dead)
		return nil
	}
	// Induction pattern.
	dead := map[*Value]bool{}
	for _, l := range f.Loops() {
		head := l.Head
		t := head.Term()
		if t == nil || t.Op != OpBranch || t.Cond != CondLt {
			continue
		}
		iv, limit := t.Args[0], t.Args[1]
		if iv.Op != OpPhi || iv.Block != head {
			continue
		}
		// The branch must exit the loop on false (Succs[1] outside).
		if l.Blocks[head.Succs[1]] || !l.Blocks[head.Succs[0]] {
			continue
		}
		// iv = phi(c0 >= 0, iv + positive const).
		okInit, okStep := false, false
		for _, a := range iv.Args {
			if c, isC := isConstInt(a); isC && c >= 0 {
				okInit = true
				continue
			}
			if a.Op == OpAdd && a.Args[0] == iv {
				if s, isC := isConstInt(a.Args[1]); isC && s > 0 {
					okStep = true
					continue
				}
			}
			// Unknown input: not canonical.
			okInit = false
			okStep = false
			break
		}
		if !okInit || !okStep {
			continue
		}
		// limit must be len(arr) for an array that cannot change during the
		// loop (defined outside it, or reloaded from a global the loop never
		// stores to).
		if limit.Op != OpArrLen {
			continue
		}
		arr := limit.Args[0]
		if l.Blocks[arr.Block] && !stableGlobalArray(l, arr) {
			continue
		}
		for b := range l.Blocks {
			for _, v := range b.Insns {
				if v.Op == OpBoundsCheck && v.Args[1] == iv && sameArrayIn(l, v.Args[0], arr) {
					if ctx != nil && ctx.Tracing() {
						ctx.Note("bce.induction", NoteAnchor(b, v), KV("iv", int64(iv.ID)))
					}
					dead[v] = true
				}
			}
		}
	}
	removeValues(f, dead)
	// Constant-index checks against known allocation sizes.
	dead = map[*Value]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Insns {
			if v.Op != OpBoundsCheck {
				continue
			}
			arr, idx := v.Args[0], v.Args[1]
			n, nok := int64(0), false
			if arr.Op == OpNewArray {
				n, nok = isConstInt(arr.Args[0])
			}
			c, cok := isConstInt(idx)
			if nok && cok && c >= 0 && c < n {
				if ctx != nil && ctx.Tracing() {
					ctx.Note("bce.const", NoteAnchor(b, v), KV("index", c), KV("length", n))
				}
				dead[v] = true
			}
		}
	}
	removeValues(f, dead)
	return nil
}

// sameArrayIn reports whether two array values are provably the same object
// throughout the loop: identical SSA values, or both loads of the same
// static global that the loop never stores to (globals are reloaded at each
// use site, so syntactic equality is too strict).
func sameArrayIn(l *Loop, a, b *Value) bool {
	if a == b {
		return true
	}
	if a.Op == OpStaticLoad && b.Op == OpStaticLoad && a.Slot == b.Slot {
		return stableGlobalSlot(l, a.Slot)
	}
	return false
}

// stableGlobalArray reports whether v is a load of a global slot the loop
// never writes (directly or through calls).
func stableGlobalArray(l *Loop, v *Value) bool {
	return v.Op == OpStaticLoad && stableGlobalSlot(l, v.Slot)
}

func stableGlobalSlot(l *Loop, slot int64) bool {
	for b := range l.Blocks {
		for _, v := range b.Insns {
			if v.Op == OpStaticStore && v.Slot == slot {
				return false
			}
			if isCall(v) {
				return false // a callee may store the global
			}
		}
	}
	return true
}

// runGCCheckElim keeps a single GC check per loop (the paper's custom
// post-unroll optimization) and removes checks outside any loop. When the
// effect analysis is available, a loop whose body — including everything its
// calls can transitively reach — performs no managed allocation keeps no
// check at all: the simulated GC triggers only on the allocation clock, so a
// safepoint in an allocation-free loop can never observe a crossed threshold
// that was not already crossed on entry.
func runGCCheckElim(f *Function, ctx *PassContext) {
	f.Recompute()
	loops := f.Loops()
	// Innermost loops claim their checks first so an outer loop never
	// deletes an inner loop's only safepoint.
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth > loops[j].Depth
		}
		return loops[i].Head.rpo < loops[j].Head.rpo
	})
	dead := map[*Value]bool{}
	inAnyLoop := map[*Block]bool{}
	for _, l := range loops {
		for b := range l.Blocks {
			inAnyLoop[b] = true
		}
	}
	// Innermost-first: keep the first check per loop, drop the rest. An
	// allocation-free loop (outer loops of one are never allocation-free,
	// since their block sets include it) keeps none.
	kept := map[*Value]bool{}
	for _, l := range loops {
		allocFree := ctx != nil && ctx.Static != nil && loopAllocFree(f, l, ctx.Static)
		if allocFree && ctx.Tracing() {
			ctx.Note("gccheckelim.allocfree", NoteAnchor(l.Head, nil), KV("depth", int64(l.Depth)))
		}
		var first *Value
		// Deterministic order: header first, then blocks in f.Blocks order.
		scan := []*Block{l.Head}
		for _, b := range f.Blocks {
			if b != l.Head && l.Blocks[b] {
				scan = append(scan, b)
			}
		}
		for _, b := range scan {
			for _, v := range b.Insns {
				if v.Op != OpGCCheck || dead[v] {
					continue
				}
				if allocFree {
					dead[v] = true
					continue
				}
				if first == nil || kept[v] {
					if first == nil {
						first = v
						kept[v] = true
					}
					continue
				}
				if !kept[v] {
					dead[v] = true
				}
			}
		}
	}
	// Straight-line checks outside loops are unnecessary (calls already
	// poll).
	for _, b := range f.Blocks {
		if inAnyLoop[b] {
			continue
		}
		for _, v := range b.Insns {
			if v.Op == OpGCCheck {
				dead[v] = true
			}
		}
	}
	removeValues(f, dead)
}

// loopAllocFree reports whether no instruction in l — nor anything reachable
// through its managed calls, per the effect summaries — allocates. Natives
// and intrinsics never allocate managed memory in this VM.
func loopAllocFree(f *Function, l *Loop, static *sa.Result) bool {
	for b := range l.Blocks {
		for _, v := range b.Insns {
			switch v.Op {
			case OpNewArray, OpNewObject:
				return false
			case OpCallStatic:
				if static.Summary[v.Sym]&sa.EffAlloc != 0 {
					return false
				}
			case OpCallVirtual:
				// The dispatch may reach any instantiated implementation.
				for _, t := range static.Graph.ImplsOf(dex.MethodID(v.Sym)) {
					if static.Summary[t]&sa.EffAlloc != 0 {
						return false
					}
				}
			}
		}
	}
	return true
}
