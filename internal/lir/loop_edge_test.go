package lir

import (
	"fmt"
	"testing"

	"replayopt/internal/machine"
	"replayopt/internal/minic"
	"replayopt/internal/rt"
)

// Edge-case coverage for the loop transforms: trip counts around the unroll
// factor, zero-trip loops, and peeling interactions.

func runWith(t *testing.T, src string, passes ...PassSpec) uint64 {
	t.Helper()
	prog, err := minic.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := O1()
	cfg.Passes = append(cfg.Passes, passes...)
	code, err := Compile(prog, nil, cfg, nil, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	proc := rt.NewProcess(prog, rt.Config{})
	x := machine.NewExec(proc, code)
	x.MaxCycles = 200_000_000
	v, err := x.Call(prog.Entry, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func sumSrc(n int) string {
	return fmt.Sprintf(`
func main() int {
	int s = 0;
	for (int i = 0; i < %d; i = i + 1) { s = s * 3 + i + 1; s = s %% 999983; }
	return s;
}`, n)
}

func TestUnrollTripCountEdges(t *testing.T) {
	// Trip counts straddling the factor: 0, 1, factor-1, factor,
	// factor+1, 2*factor, and a co-prime count.
	for _, trips := range []int{0, 1, 3, 4, 5, 8, 13} {
		src := sumSrc(trips)
		want := runWith(t, src) // O1 only
		for _, factor := range []int{2, 4, 8} {
			got := runWith(t, src, PassSpec{Name: "unroll", Params: map[string]int{"factor": factor}})
			if got != want {
				t.Errorf("trips=%d factor=%d: %d != %d", trips, factor, int64(got), int64(want))
			}
		}
	}
}

func TestPeelZeroAndOneTripLoops(t *testing.T) {
	for _, trips := range []int{0, 1, 2} {
		src := sumSrc(trips)
		want := runWith(t, src)
		got := runWith(t, src, PassSpec{Name: "peel", Params: map[string]int{"count": 2}})
		if got != want {
			t.Errorf("trips=%d: peel changed result %d -> %d", trips, int64(want), int64(got))
		}
	}
}

func TestUnrollThenPeelThenUnroll(t *testing.T) {
	src := `
func main() int {
	int s = 0;
	for (int i = 0; i < 29; i = i + 1) {
		for (int j = 0; j < 11; j = j + 1) { s = (s * 7 + i + j) % 1000003; }
	}
	return s;
}`
	want := runWith(t, src)
	got := runWith(t, src,
		PassSpec{Name: "unroll", Params: map[string]int{"factor": 4}},
		PassSpec{Name: "peel", Params: map[string]int{"count": 2}},
		PassSpec{Name: "unroll", Params: map[string]int{"factor": 2, "innermost-only": 0}},
		PassSpec{Name: "gccheckelim"},
		PassSpec{Name: "gvn"},
		PassSpec{Name: "dce"},
		PassSpec{Name: "simplifycfg"},
	)
	if got != want {
		t.Errorf("stacked loop transforms changed result: %d != %d", int64(got), int64(want))
	}
}

func TestGCCheckElimKeepsInnerLoopChecks(t *testing.T) {
	prog, err := minic.CompileSource("t", `
func main() int {
	int s = 0;
	for (int i = 0; i < 4; i = i + 1) {
		for (int j = 0; j < 4; j = j + 1) { s = s + i*j; }
	}
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f, err := BuildSSA(prog, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunPassForTest(f, "gccheckelim", nil); err != nil {
		t.Fatal(err)
	}
	f.Recompute()
	loops := f.Loops()
	if len(loops) != 2 {
		t.Fatalf("%d loops", len(loops))
	}
	// Each loop must retain at least one GC check within its blocks.
	for _, l := range loops {
		found := false
		for b := range l.Blocks {
			for _, v := range b.Insns {
				if v.Op == OpGCCheck {
					found = true
				}
			}
		}
		if !found {
			t.Error("a loop lost its only safepoint")
		}
	}
}

func TestDevirtPolymorphicSiteLeftAlone(t *testing.T) {
	prog, err := minic.CompileSource("t", `
class A { func f(int x) int { return x + 1; } }
class B extends A { func f(int x) int { return x * 2; } }
func main() int {
	A[] objs = new A[2];
	objs[0] = new A();
	objs[1] = new B();
	int s = 0;
	for (int i = 0; i < 10; i = i + 1) {
		A o = objs[i % 2];
		s = s + o.f(i);
	}
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// A 50/50 profile must not devirtualize at min-share 90.
	prof := NewProfile()
	var site SiteKey
	mainID := prog.Entry
	for pc, in := range prog.Methods[mainID].Code {
		if in.Op.IsInvoke() {
			site = SiteKey{Method: mainID, PC: pc}
		}
	}
	prof.Record(site, 0)
	prof.Record(site, 1)
	f, _ := BuildSSA(prog, mainID)
	info, _ := PassByName("devirt")
	if err := info.Run(f, &PassContext{Profile: prof}, resolveParams(info, nil)); err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		for _, v := range b.Insns {
			if v.Op == OpClassOf {
				t.Fatal("polymorphic site was devirtualized at 50% share")
			}
		}
	}
}
