package lir

import (
	"fmt"
	"testing"

	"replayopt/internal/interp"
	"replayopt/internal/machine"
	"replayopt/internal/minic"
	"replayopt/internal/rt"
)

// Constant-folding and algebraic-simplification coverage: every foldable
// operator, checked against interpreter ground truth, plus the trap-
// preservation rules folding must respect.

// interpGround runs src in the interpreter (the semantic oracle).
func interpGround(t *testing.T, src string) uint64 {
	t.Helper()
	prog, err := minic.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewEnv(rt.NewProcess(prog, rt.Config{}))
	e.MaxCycles = 200_000_000
	v, err := e.Run()
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return v
}

// foldPipeline is an aggressive scalar-only pipeline: constant folding,
// instcombine, reassociation, GVN, DCE — run twice to reach a fixpoint.
func foldPipeline() []PassSpec {
	one := []PassSpec{
		{Name: "constfold"}, {Name: "instcombine"}, {Name: "reassoc"},
		{Name: "gvn"}, {Name: "dce"}, {Name: "simplifycfg"},
	}
	return append(append([]PassSpec{}, one...), one...)
}

func TestFoldIntOperators(t *testing.T) {
	// Constant operands force foldValue through every integer case; the
	// extra variable term keeps the function from collapsing entirely.
	cases := []string{
		"7 + 3", "7 - 3", "7 * 3", "45 / 7", "45 % 7",
		"12 & 10", "12 | 10", "12 ^ 10", "3 << 4", "1024 >> 3",
		"-(21)", "0 - 9223372036854775807",
		"(1 << 62) * 4",    // overflow wraps like the runtime
		"100 / 3 * 3 + 17", // mixed chain
	}
	for i, expr := range cases {
		src := fmt.Sprintf(`func main() int { int v = %s; return v; }`, expr)
		want := interpGround(t, src)
		got := runWith(t, src, foldPipeline()...)
		if got != want {
			t.Errorf("case %d (%s): folded %d, interp %d", i, expr, int64(got), int64(want))
		}
	}
}

func TestFoldFloatOperators(t *testing.T) {
	cases := []string{
		"2.5 + 0.25", "2.5 - 0.25", "2.5 * 4.0", "10.0 / 4.0",
		"-(3.5)", "itof(7) * 2.0", "0.1 + 0.2", // not 0.3: folding must match IEEE exactly
	}
	for i, expr := range cases {
		src := fmt.Sprintf(`func main() int { float v = %s; return ftoi(v * 1000000.0); }`, expr)
		want := interpGround(t, src)
		got := runWith(t, src, foldPipeline()...)
		if got != want {
			t.Errorf("case %d (%s): folded %d, interp %d", i, expr, int64(got), int64(want))
		}
	}
}

func TestFoldComparisonsAndBranches(t *testing.T) {
	// Constant conditions exercise evalCond + simplifycfg branch folding in
	// both directions and all six relations, on ints and floats.
	rels := []string{"<", "<=", ">", ">=", "==", "!="}
	for _, rel := range rels {
		for _, operands := range [][2]string{{"3", "5"}, {"5", "3"}, {"4", "4"}} {
			src := fmt.Sprintf(`func main() int {
	int r = 0;
	if (%s %s %s) { r = 100; } else { r = 200; }
	return r;
}`, operands[0], rel, operands[1])
			want := interpGround(t, src)
			got := runWith(t, src, foldPipeline()...)
			if got != want {
				t.Errorf("%s %s %s: folded %d, interp %d",
					operands[0], rel, operands[1], int64(got), int64(want))
			}
			fsrc := fmt.Sprintf(`func main() int {
	int r = 0;
	if (%s.0 %s %s.0) { r = 100; } else { r = 200; }
	return r;
}`, operands[0], rel, operands[1])
			want = interpGround(t, fsrc)
			got = runWith(t, fsrc, foldPipeline()...)
			if got != want {
				t.Errorf("float %s %s %s: folded %d, interp %d",
					operands[0], rel, operands[1], int64(got), int64(want))
			}
		}
	}
}

func TestFoldPreservesDivTrap(t *testing.T) {
	// A constant division by zero must NOT be folded away: the runtime trap
	// is the program's observable behaviour.
	src := `
func main() int {
	int z = 0;
	if (1 == 2) { z = 1; }
	return 10 / z;
}`
	prog, err := minic.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := O1()
	cfg.Passes = append(cfg.Passes, foldPipeline()...)
	code, err := Compile(prog, nil, cfg, nil, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	proc := rt.NewProcess(prog, rt.Config{})
	x := machine.NewExec(proc, code)
	x.MaxCycles = 10_000_000
	if _, err := x.Call(prog.Entry, nil); err == nil {
		t.Fatal("folded pipeline lost the divide-by-zero trap")
	}
}

// TestRangePassesPreserveDivTrap: with the range passes in the pipeline, a
// divide whose divisor is NOT provably nonzero must keep its zero-trap guard
// (ir.go's trap-semantics contract). The range analysis sees z ∈ [0, 0] here,
// so rangecheckelim must refuse the NoTrap mark and the runtime trap survives
// the full fold pipeline.
func TestRangePassesPreserveDivTrap(t *testing.T) {
	src := `
func main() int {
	int z = 0;
	if (1 == 2) { z = 3; }
	return 10 / z;
}`
	prog, err := minic.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := O1()
	cfg.Passes = append(cfg.Passes,
		PassSpec{Name: "rangecheckelim"},
		PassSpec{Name: "rangebranch"},
		PassSpec{Name: "rangestrength"})
	cfg.Passes = append(cfg.Passes, foldPipeline()...)
	code, err := Compile(prog, nil, cfg, nil, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	proc := rt.NewProcess(prog, rt.Config{})
	x := machine.NewExec(proc, code)
	x.MaxCycles = 10_000_000
	if _, err := x.Call(prog.Entry, nil); err == nil {
		t.Fatal("range passes lost the divide-by-zero trap")
	}

	// The flip side: a provably nonzero divisor lowers to the unguarded
	// divide and must still compute the exact same quotients.
	ok := `
func main() int {
	int acc = 0;
	for (int i = 1; i < 50; i = i + 1) { acc = acc + 10000 / i + 10000 % i; }
	return acc;
}`
	want := interpGround(t, ok)
	got := runWith(t, ok,
		PassSpec{Name: "rangecheckelim"},
		PassSpec{Name: "rangebranch"},
		PassSpec{Name: "rangestrength"})
	if got != want {
		t.Errorf("unguarded divide changed the result: %d, interp %d", int64(got), int64(want))
	}
}

func TestFoldConversionEdges(t *testing.T) {
	cases := []string{
		`func main() int { return ftoi(itof(123456789)); }`,
		`func main() int { return ftoi(2.99); }`,  // truncation toward zero
		`func main() int { return ftoi(-2.99); }`, // negative truncation
	}
	for i, src := range cases {
		want := interpGround(t, src)
		got := runWith(t, src, foldPipeline()...)
		if got != want {
			t.Errorf("case %d: folded %d, interp %d", i, int64(got), int64(want))
		}
	}
}

// TestReassocEnablesFolding: reassociation must regroup (x + 1) + 2 so the
// constants fold, without changing the value.
func TestReassocEnablesFolding(t *testing.T) {
	src := `
func main() int {
	int acc = 0;
	for (int x = 0; x < 20; x = x + 1) {
		acc = acc + ((x + 1) + 2) + ((3 + x) + 4);
	}
	return acc;
}`
	want := interpGround(t, src)
	got := runWith(t, src, foldPipeline()...)
	if got != want {
		t.Errorf("reassoc pipeline: %d, interp %d", int64(got), int64(want))
	}
}

// TestFastReassocIsUnsafeByConstruction: the fast-math variant may change
// float results; it must never change *integer* results.
func TestFastReassocIntSafe(t *testing.T) {
	src := `
func main() int {
	int acc = 7;
	for (int x = 1; x < 30; x = x + 1) { acc = acc * 3 + x * 5 - 2; acc = acc % 1000003; }
	return acc;
}`
	want := interpGround(t, src)
	got := runWith(t, src, PassSpec{Name: "reassoc", Params: map[string]int{"fast": 1}})
	if got != want {
		t.Errorf("fast reassoc changed an integer-only result: %d != %d", int64(got), int64(want))
	}
}
