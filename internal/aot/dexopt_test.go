package aot

import (
	"testing"

	"replayopt/internal/dex"
	"replayopt/internal/hgraph"
	"replayopt/internal/minic"
)

func graphOf(t *testing.T, src, fn string) (*dex.Program, *hgraph.Graph) {
	t.Helper()
	prog, err := minic.CompileSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := prog.MethodByName(fn)
	if !ok {
		t.Fatalf("no %s", fn)
	}
	g, err := hgraph.Build(prog, prog.Method(id))
	if err != nil {
		t.Fatal(err)
	}
	return prog, g
}

func countOps(g *hgraph.Graph, ops ...dex.Op) int {
	want := map[dex.Op]bool{}
	for _, o := range ops {
		want[o] = true
	}
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Insns {
			if want[in.Op] {
				n++
			}
		}
	}
	return n
}

func TestConstantFoldCollapsesArithmetic(t *testing.T) {
	_, g := graphOf(t, `
func f() int {
	int a = 3 * 4 + 2;
	int b = a - 0;
	return b;
}
func main() int { return f(); }`, "f")
	constantFold(g)
	localCSE(g)
	copyProp(g)
	constantFold(g)
	deadCode(g)
	if n := countOps(g, dex.OpMulInt, dex.OpAddInt, dex.OpSubInt); n != 0 {
		t.Errorf("%d arithmetic ops survived folding", n)
	}
}

func TestLocalCSEDedupesPureOps(t *testing.T) {
	_, g := graphOf(t, `
func f(int x) int {
	int a = x * 17;
	int b = x * 17;
	return a + b;
}
func main() int { return f(2); }`, "f")
	localCSE(g)
	copyProp(g)
	deadCode(g)
	localCSE(g)
	copyProp(g)
	deadCode(g)
	if n := countOps(g, dex.OpMulInt); n != 1 {
		t.Errorf("%d multiplies survived CSE, want 1", n)
	}
}

func TestDeadCodeKeepsSideEffects(t *testing.T) {
	_, g := graphOf(t, `
global int[] a;
func f(int i) int {
	int dead = i * 99;
	a[i] = 5;
	return i;
}
func main() int { a = new int[8]; return f(1); }`, "f")
	constantFold(g)
	deadCode(g)
	if n := countOps(g, dex.OpMulInt); n != 0 {
		t.Error("dead multiply survived")
	}
	if n := countOps(g, dex.OpAStoreInt); n != 1 {
		t.Error("side-effecting store removed")
	}
}

func TestCopyPropRewritesUses(t *testing.T) {
	_, g := graphOf(t, `
func f(int x) int {
	int a = x;
	int b = a;
	return b + b;
}
func main() int { return f(21); }`, "f")
	copyProp(g)
	deadCode(g)
	// After copy prop + DCE the move chain should be mostly gone.
	if n := countOps(g, dex.OpMove); n > 1 {
		t.Errorf("%d moves survived", n)
	}
}
