package aot

import (
	"replayopt/internal/dex"
	"replayopt/internal/hgraph"
	"replayopt/internal/machine"
	"replayopt/internal/rt"
)

// lowerOpts control instruction selection for the baseline code generator.
type lowerOpts struct {
	fusedAddressing bool // indexed load/store forms
	intIntrinsics   bool // absI/minI/maxI lower to Intr
}

// lowerer translates a dex CFG to linear machine code with virtual
// registers. dex registers map to vregs of the same index; temporaries are
// allocated above NumRegs.
type lowerer struct {
	g       *hgraph.Graph
	opts    lowerOpts
	code    []machine.Insn
	nextReg int
	starts  map[*hgraph.Block]int
	// fixups: (machine pc, target block)
	fixups []fixup
}

type fixup struct {
	pc     int
	target *hgraph.Block
}

func lower(g *hgraph.Graph, opts lowerOpts) *machine.Fn {
	lo := &lowerer{g: g, opts: opts, nextReg: g.Method.NumRegs, starts: map[*hgraph.Block]int{}}
	for i, b := range g.Blocks {
		lo.starts[b] = len(lo.code)
		// A single GC check per loop (§3.5): the runtime requires a
		// safepoint in every loop body; the baseline puts it in the header.
		if b.LoopHead == b && b.LoopDepth > 0 {
			lo.emit(machine.Insn{Op: machine.GCChk})
		}
		lo.lowerBlock(b, i)
	}
	for _, f := range lo.fixups {
		lo.code[f.pc].Imm = int64(lo.starts[f.target])
	}
	return &machine.Fn{Method: methodID(g), NumRegs: lo.nextReg, Code: lo.code}
}

func methodID(g *hgraph.Graph) dex.MethodID {
	for i, m := range g.Prog.Methods {
		if m == g.Method {
			return dex.MethodID(i)
		}
	}
	return -1
}

func (lo *lowerer) emit(in machine.Insn) int {
	lo.code = append(lo.code, in)
	return len(lo.code) - 1
}

func (lo *lowerer) temp() int {
	r := lo.nextReg
	lo.nextReg++
	return r
}

var condOf = map[dex.Op]machine.Cond{
	dex.OpIfEq: machine.CondEq, dex.OpIfNe: machine.CondNe,
	dex.OpIfLt: machine.CondLt, dex.OpIfLe: machine.CondLe,
	dex.OpIfGt: machine.CondGt, dex.OpIfGe: machine.CondGe,
}

var aluOf = map[dex.Op]machine.Op{
	dex.OpAddInt: machine.Add, dex.OpSubInt: machine.Sub, dex.OpMulInt: machine.Mul,
	dex.OpDivInt: machine.Div, dex.OpRemInt: machine.Rem, dex.OpAndInt: machine.And,
	dex.OpOrInt: machine.Or, dex.OpXorInt: machine.Xor, dex.OpShlInt: machine.Shl,
	dex.OpShrInt:   machine.Shr,
	dex.OpAddFloat: machine.FAdd, dex.OpSubFloat: machine.FSub,
	dex.OpMulFloat: machine.FMul, dex.OpDivFloat: machine.FDiv,
}

func (lo *lowerer) lowerBlock(b *hgraph.Block, blockIdx int) {
	g := lo.g
	for i := range b.Insns {
		in := &b.Insns[i]
		last := i == len(b.Insns)-1
		switch in.Op {
		case dex.OpNop:

		case dex.OpConstInt:
			lo.emit(machine.Insn{Op: machine.Ldi, A: in.A, Imm: in.Imm})
		case dex.OpConstFloat:
			lo.emit(machine.Insn{Op: machine.Ldf, A: in.A, F: in.F})
		case dex.OpMove:
			lo.emit(machine.Insn{Op: machine.Mov, A: in.A, B: in.B})

		case dex.OpAddInt, dex.OpSubInt, dex.OpMulInt, dex.OpDivInt, dex.OpRemInt,
			dex.OpAndInt, dex.OpOrInt, dex.OpXorInt, dex.OpShlInt, dex.OpShrInt,
			dex.OpAddFloat, dex.OpSubFloat, dex.OpMulFloat, dex.OpDivFloat:
			lo.emit(machine.Insn{Op: aluOf[in.Op], A: in.A, B: in.B, C: in.C})
		case dex.OpNegInt:
			lo.emit(machine.Insn{Op: machine.Neg, A: in.A, B: in.B})
		case dex.OpNegFloat:
			lo.emit(machine.Insn{Op: machine.FNeg, A: in.A, B: in.B})
		case dex.OpIntToFloat:
			lo.emit(machine.Insn{Op: machine.I2F, A: in.A, B: in.B})
		case dex.OpFloatToInt:
			lo.emit(machine.Insn{Op: machine.F2I, A: in.A, B: in.B})
		case dex.OpCmpFloat:
			lo.emit(machine.Insn{Op: machine.FCmp, A: in.A, B: in.B, C: in.C})

		case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfLe, dex.OpIfGt, dex.OpIfGe:
			pc := lo.emit(machine.Insn{Op: machine.Br, Cond: condOf[in.Op], B: in.B, C: in.C})
			lo.fixups = append(lo.fixups, fixup{pc, b.Succs[0]})
			// Fall-through: jump if the next block is not the layout successor.
			if blockIdx+1 >= len(g.Blocks) || g.Blocks[blockIdx+1] != b.Succs[1] {
				jpc := lo.emit(machine.Insn{Op: machine.Jmp})
				lo.fixups = append(lo.fixups, fixup{jpc, b.Succs[1]})
			}
		case dex.OpGoto:
			jpc := lo.emit(machine.Insn{Op: machine.Jmp})
			lo.fixups = append(lo.fixups, fixup{jpc, b.Succs[0]})

		case dex.OpNewArrayInt, dex.OpNewArrayFloat, dex.OpNewArrayRef:
			kind := dex.KindInt
			if in.Op == dex.OpNewArrayFloat {
				kind = dex.KindFloat
			} else if in.Op == dex.OpNewArrayRef {
				kind = dex.KindRef
			}
			lo.emit(machine.Insn{Op: machine.NewArr, A: in.A, B: in.B, Sym: int(kind)})
		case dex.OpArrayLen:
			lo.emit(machine.Insn{Op: machine.ArrLen, A: in.A, B: in.B})

		case dex.OpALoadInt, dex.OpALoadFloat, dex.OpALoadRef:
			lo.emit(machine.Insn{Op: machine.Bound, B: in.B, C: in.C})
			lo.arrayAccess(machine.Load, in.A, in.B, in.C)
		case dex.OpAStoreInt, dex.OpAStoreFloat, dex.OpAStoreRef:
			lo.emit(machine.Insn{Op: machine.Bound, B: in.B, C: in.C})
			lo.arrayAccess(machine.Store, in.A, in.B, in.C)

		case dex.OpNewInstance:
			lo.emit(machine.Insn{Op: machine.NewObj, A: in.A, Sym: in.Sym})
		case dex.OpFLoadInt, dex.OpFLoadFloat, dex.OpFLoadRef:
			// Implicit null check: address 0+disp is unmapped and faults.
			lo.emit(machine.Insn{Op: machine.Load, A: in.A, B: in.B, C: -1, Disp: 8 + in.Imm*8})
		case dex.OpFStoreInt, dex.OpFStoreFloat, dex.OpFStoreRef:
			lo.emit(machine.Insn{Op: machine.Store, A: in.A, B: in.B, C: -1, Disp: 8 + in.Imm*8})

		case dex.OpSLoadInt, dex.OpSLoadFloat, dex.OpSLoadRef:
			t := lo.temp()
			lo.emit(machine.Insn{Op: machine.Ldi, A: t, Imm: int64(rt.StaticsBase) + in.Imm*8})
			lo.emit(machine.Insn{Op: machine.Load, A: in.A, B: t, C: -1})
		case dex.OpSStoreInt, dex.OpSStoreFloat, dex.OpSStoreRef:
			t := lo.temp()
			lo.emit(machine.Insn{Op: machine.Ldi, A: t, Imm: int64(rt.StaticsBase) + in.Imm*8})
			lo.emit(machine.Insn{Op: machine.Store, A: in.A, B: t, C: -1})

		case dex.OpInvokeStatic:
			lo.emitCall(machine.Call, in, g.Prog.Methods[in.Sym].Ret)
		case dex.OpInvokeVirtual:
			lo.emitCall(machine.CallV, in, g.Prog.Methods[in.Sym].Ret)
		case dex.OpInvokeNative:
			nt := g.Prog.Natives[in.Sym]
			if lo.opts.intIntrinsics && isIntIntrinsic(nt.Intrinsic) {
				lo.emit(machine.Insn{Op: machine.Intr, A: in.A, Sym: int(nt.Intrinsic), Args: append([]int(nil), in.Args...)})
				break
			}
			lo.emitCall(machine.CallN, in, nt.Ret)

		case dex.OpReturn:
			lo.emit(machine.Insn{Op: machine.Ret, A: in.A})
		case dex.OpReturnVoid:
			lo.emit(machine.Insn{Op: machine.RetVoid})
		case dex.OpThrow:
			lo.emit(machine.Insn{Op: machine.Throw, A: in.A})
		}
		_ = last
	}
	// Fall-through block (no explicit terminator): jump if layout breaks.
	t := b.Terminator()
	if !t.Op.IsTerminator() && len(b.Succs) == 1 {
		if blockIdx+1 >= len(g.Blocks) || g.Blocks[blockIdx+1] != b.Succs[0] {
			jpc := lo.emit(machine.Insn{Op: machine.Jmp})
			lo.fixups = append(lo.fixups, fixup{jpc, b.Succs[0]})
		}
	}
}

func isIntIntrinsic(k dex.IntrinsicKind) bool {
	switch k {
	case dex.IntrinsicAbsInt, dex.IntrinsicMinInt, dex.IntrinsicMaxInt:
		return true
	}
	return false
}

func (lo *lowerer) arrayAccess(op machine.Op, val, base, idx int) {
	if lo.opts.fusedAddressing {
		lo.emit(machine.Insn{Op: op, A: val, B: base, C: idx, Disp: 8})
		return
	}
	t1 := lo.temp()
	t2 := lo.temp()
	lo.emit(machine.Insn{Op: machine.Shl, A: t1, B: idx, C: -1, Disp: 3})
	lo.emit(machine.Insn{Op: machine.Add, A: t2, B: base, C: t1})
	lo.emit(machine.Insn{Op: op, A: val, B: t2, C: -1, Disp: 8})
}

func (lo *lowerer) emitCall(op machine.Op, in *dex.Insn, ret dex.Kind) {
	dest := in.A
	if ret == dex.KindVoid {
		dest = -1
	}
	lo.emit(machine.Insn{Op: op, A: dest, Sym: in.Sym, Args: append([]int(nil), in.Args...)})
}
