package aot

import (
	"testing"

	"replayopt/internal/dex"
	"replayopt/internal/hgraph"
	"replayopt/internal/interp"
	"replayopt/internal/machine"
	"replayopt/internal/minic"
	"replayopt/internal/rt"
)

// differential harness: every program must produce identical results (and
// identical observable heap effects) interpreted and compiled.
var diffPrograms = []struct {
	name string
	src  string
}{
	{"arith", `func main() int { return (2+3*4-5)/2 % 7; }`},
	{"floats", `func main() int {
		float acc = 0.0;
		for (int i = 1; i < 50; i = i + 1) { acc = acc + 1.0 / itof(i); }
		return ftoi(acc * 1000.0);
	}`},
	{"loops", `func main() int {
		int s = 0;
		for (int i = 0; i < 37; i = i + 1) {
			for (int j = i; j < 37; j = j + 1) {
				if ((i ^ j) % 3 == 0) { s = s + i*j; } else { s = s - j; }
			}
		}
		return s;
	}`},
	{"arrays", `func main() int {
		int[] a = new int[64];
		for (int i = 0; i < 64; i = i + 1) { a[i] = i * 3 % 17; }
		int best = 0;
		for (int i = 1; i < 64; i = i + 1) { if (a[i] > a[best]) { best = i; } }
		return best * 100 + a[best];
	}`},
	{"calls", `
	func square(int x) int { return x * x; }
	func sumsq(int n) int {
		int s = 0;
		for (int i = 0; i < n; i = i + 1) { s = s + square(i); }
		return s;
	}
	func main() int { return sumsq(40); }`},
	{"recursion", `
	func fib(int n) int { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
	func main() int { return fib(17); }`},
	{"virtual", `
	class Animal { int legs; func noise() int { return 1; } }
	class Dog extends Animal { func noise() int { return 2 + this.legs; } }
	class Cat extends Animal { func noise() int { return 30; } }
	func main() int {
		Animal[] zoo = new Animal[3];
		zoo[0] = new Dog(); zoo[1] = new Cat(); zoo[2] = new Animal();
		Animal d = zoo[0]; d.legs = 4;
		int s = 0;
		for (int i = 0; i < 3; i = i + 1) { Animal a = zoo[i]; s = s * 100 + a.noise(); }
		return s;
	}`},
	{"globals", `
	global int acc;
	global float[] buf;
	func push(float v) { int n = ftoi(buf[0]); buf[n+1] = v; buf[0] = itof(n+1); }
	func main() int {
		buf = new float[16];
		push(1.5); push(2.5); push(3.0);
		float s = 0.0;
		for (int i = 1; i <= ftoi(buf[0]); i = i + 1) { s = s + buf[i]; }
		acc = ftoi(s * 2.0);
		return acc;
	}`},
	{"natives", `func main() int {
		float s = 0.0;
		for (int i = 1; i < 20; i = i + 1) { s = s + sqrt(itof(i)) + sin(itof(i)); }
		return ftoi(s * 1000.0) + absi(-5) + maxi(3, mini(10, 7));
	}`},
	{"gc_pressure", `func main() int {
		int total = 0;
		for (int i = 0; i < 300; i = i + 1) {
			int[] tmp = new int[1024];
			tmp[i % 1024] = i;
			total = total + tmp[i % 1024];
		}
		return total;
	}`},
}

func interpret(t *testing.T, prog *dex.Program) (uint64, uint64, *rt.Process) {
	t.Helper()
	proc := rt.NewProcess(prog, rt.Config{})
	e := interp.NewEnv(proc)
	e.MaxCycles = 500_000_000
	v, err := e.Run()
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	return v, e.Cycles, proc
}

func execCompiled(t *testing.T, prog *dex.Program, code *machine.Program) (uint64, uint64, *rt.Process) {
	t.Helper()
	proc := rt.NewProcess(prog, rt.Config{})
	x := machine.NewExec(proc, code)
	x.MaxCycles = 500_000_000
	v, err := x.Call(prog.Entry, nil)
	if err != nil {
		t.Fatalf("compiled run: %v", err)
	}
	return v, x.Cycles, proc
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := minic.CompileSource(tc.name, tc.src)
			if err != nil {
				t.Fatalf("minic: %v", err)
			}
			want, icycles, iproc := interpret(t, prog)
			code, err := Compile(prog)
			if err != nil {
				t.Fatalf("aot: %v", err)
			}
			got, ccycles, cproc := execCompiled(t, prog, code)
			if got != want {
				t.Fatalf("compiled result %d != interpreted %d", int64(got), int64(want))
			}
			if ccycles >= icycles {
				t.Errorf("compiled code not faster: %d >= %d cycles", ccycles, icycles)
			}
			// Observable heap state must match (same allocation order, same
			// final statics).
			if iproc.HeapUsed() != cproc.HeapUsed() {
				t.Errorf("heap divergence: interp %d vs compiled %d bytes",
					iproc.HeapUsed(), cproc.HeapUsed())
			}
			for slot := range prog.Globals {
				iv, _ := iproc.GlobalGet(int64(slot))
				cv, _ := cproc.GlobalGet(int64(slot))
				if iv != cv {
					t.Errorf("global %s diverged: %#x vs %#x", prog.Globals[slot].Name, iv, cv)
				}
			}
		})
	}
}

func TestCompiledSpeedupIsSubstantial(t *testing.T) {
	// The compiled tier should beat the interpreter by a wide margin on a
	// hot numeric loop (ballpark 2-6x in this cost model).
	prog, err := minic.CompileSource("hot", `
func main() int {
	int s = 0;
	for (int i = 0; i < 5000; i = i + 1) { s = s + i*i % 31; }
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	_, icycles, _ := interpret(t, prog)
	code, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, ccycles, _ := execCompiled(t, prog, code)
	ratio := float64(icycles) / float64(ccycles)
	if ratio < 1.8 {
		t.Errorf("compiled speedup only %.2fx over interpreter", ratio)
	}
}

func TestUncompilableMethodsSkipped(t *testing.T) {
	prog, err := minic.CompileSource("u", `
@uncompilable
func weird(int x) int { return x + 1; }
func main() int { return weird(41); }`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	weirdID, _ := prog.MethodByName("weird")
	if _, ok := code.Fns[weirdID]; ok {
		t.Error("uncompilable method was compiled")
	}
	// Mixed-mode execution still works via the interpreter bridge.
	got, _, _ := execCompiled(t, prog, code)
	if got != 42 {
		t.Errorf("mixed-mode result = %d, want 42", int64(got))
	}
}

func TestThrowCompiles(t *testing.T) {
	prog, err := minic.CompileSource("th", `
func f(int x) int { if (x > 10) { throw 99; } return x; }
func main() int { return f(20); }`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	proc := rt.NewProcess(prog, rt.Config{})
	x := machine.NewExec(proc, code)
	_, err = x.Call(prog.Entry, nil)
	if err == nil {
		t.Fatal("throw did not surface")
	}
}

func TestOptimizationsShrinkCode(t *testing.T) {
	prog, err := minic.CompileSource("opt", `
func main() int {
	int a = 3 * 4;          // folds to 12
	int b = a + 0;          // identity
	int c = 5 * 0;          // zero
	int unused = 1 + 2 + 3; // dead
	return a + b + c;
}`)
	if err != nil {
		t.Fatal(err)
	}
	id := prog.Entry
	fn, err := CompileMethod(prog, id)
	if err != nil {
		t.Fatal(err)
	}
	// Count surviving ALU instructions; folding + DCE should leave almost
	// none (only the final add chain at most).
	alu := 0
	for _, in := range fn.Code {
		switch in.Op {
		case machine.Add, machine.Sub, machine.Mul:
			alu++
		}
	}
	if alu > 2 {
		t.Errorf("%d ALU ops survived constant folding + DCE", alu)
	}
}

func TestRegisterPressureSpills(t *testing.T) {
	// A method with many simultaneously-live values must spill but stay
	// correct with few registers.
	src := `
func wide(int x) int {
	int a = x + 1; int b = x + 2; int c = x + 3; int d = x + 4;
	int e = x + 5; int f = x + 6; int g = x + 7; int h = x + 8;
	int i = x + 9; int j = x + 10; int k = x + 11; int l = x + 12;
	int m = x + 13; int n = x + 14; int o = x + 15; int p = x + 16;
	return a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p;
}
func main() int { return wide(100); }`
	prog, err := minic.CompileSource("wide", src)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := interpret(t, prog)

	// Compile with very few registers to force spilling.
	id := prog.Entry
	wideID, _ := prog.MethodByName("wide")
	g, err := hgraph.Build(prog, prog.Method(wideID))
	if err != nil {
		t.Fatal(err)
	}
	fn := lower(g, lowerOpts{fusedAddressing: true})
	fn.Method = wideID
	if err := machine.Finalize(fn, 1, machine.LowerOpts{NumRegs: 8}); err != nil {
		t.Fatalf("finalize with 8 regs: %v", err)
	}
	if fn.NumSpills == 0 {
		t.Error("expected spills with 8 registers")
	}
	mainFn, err := CompileMethod(prog, id)
	if err != nil {
		t.Fatal(err)
	}
	code := machine.NewProgram()
	code.Fns[wideID] = fn
	code.Fns[id] = mainFn
	got, _, _ := execCompiled(t, prog, code)
	if got != want {
		t.Errorf("spilled code computes %d, want %d", int64(got), int64(want))
	}
}
