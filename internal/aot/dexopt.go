package aot

import (
	"math"

	"replayopt/internal/dex"
	"replayopt/internal/hgraph"
)

// The dex-level optimizations of the baseline compiler. They are all local
// (per basic block) and guaranteed-safe, mirroring ART's conservative
// character (§2: "designed to be safe rather than highly optimizing").

type constVal struct {
	isFloat bool
	i       int64
	f       float64
}

// constantFold propagates per-block constants, folds arithmetic on
// constants, and simplifies algebraic identities (the instruction_simplifier
// pass).
func constantFold(g *hgraph.Graph) {
	for _, b := range g.Blocks {
		consts := map[int]constVal{}
		for i := range b.Insns {
			in := &b.Insns[i]
			foldInsn(in, consts)
			if w := hgraph.InsnDef(g.Prog, in); w >= 0 {
				delete(consts, w)
				switch in.Op {
				case dex.OpConstInt:
					consts[in.A] = constVal{i: in.Imm}
				case dex.OpConstFloat:
					consts[in.A] = constVal{isFloat: true, f: in.F}
				}
			}
		}
	}
}

func foldInsn(in *dex.Insn, consts map[int]constVal) {
	ci := func(r int) (int64, bool) {
		v, ok := consts[r]
		if !ok || v.isFloat {
			return 0, false
		}
		return v.i, true
	}
	cf := func(r int) (float64, bool) {
		v, ok := consts[r]
		if !ok || !v.isFloat {
			return 0, false
		}
		return v.f, true
	}
	setI := func(v int64) { *in = dex.Insn{Op: dex.OpConstInt, A: in.A, Imm: v} }
	setF := func(v float64) { *in = dex.Insn{Op: dex.OpConstFloat, A: in.A, F: v} }
	mov := func(src int) { *in = dex.Insn{Op: dex.OpMove, A: in.A, B: src} }

	switch in.Op {
	case dex.OpAddInt, dex.OpSubInt, dex.OpMulInt, dex.OpAndInt, dex.OpOrInt,
		dex.OpXorInt, dex.OpShlInt, dex.OpShrInt:
		bv, bok := ci(in.B)
		cv, cok := ci(in.C)
		if bok && cok {
			switch in.Op {
			case dex.OpAddInt:
				setI(bv + cv)
			case dex.OpSubInt:
				setI(bv - cv)
			case dex.OpMulInt:
				setI(bv * cv)
			case dex.OpAndInt:
				setI(bv & cv)
			case dex.OpOrInt:
				setI(bv | cv)
			case dex.OpXorInt:
				setI(bv ^ cv)
			case dex.OpShlInt:
				setI(bv << (uint64(cv) & 63))
			case dex.OpShrInt:
				setI(bv >> (uint64(cv) & 63))
			}
			return
		}
		// Algebraic identities.
		switch in.Op {
		case dex.OpAddInt:
			if cok && cv == 0 {
				mov(in.B)
			} else if bok && bv == 0 {
				mov(in.C)
			}
		case dex.OpSubInt:
			if cok && cv == 0 {
				mov(in.B)
			}
		case dex.OpMulInt:
			if cok && cv == 1 {
				mov(in.B)
			} else if bok && bv == 1 {
				mov(in.C)
			} else if cok && cv == 0 || bok && bv == 0 {
				setI(0)
			}
		}
	case dex.OpDivInt:
		if cv, cok := ci(in.C); cok && cv == 1 {
			mov(in.B)
		}
	case dex.OpNegInt:
		if bv, ok := ci(in.B); ok {
			setI(-bv)
		}
	case dex.OpAddFloat, dex.OpSubFloat, dex.OpMulFloat, dex.OpDivFloat:
		bv, bok := cf(in.B)
		cv, cok := cf(in.C)
		if bok && cok {
			switch in.Op {
			case dex.OpAddFloat:
				setF(bv + cv)
			case dex.OpSubFloat:
				setF(bv - cv)
			case dex.OpMulFloat:
				setF(bv * cv)
			case dex.OpDivFloat:
				setF(bv / cv)
			}
		}
	case dex.OpNegFloat:
		if bv, ok := cf(in.B); ok {
			setF(-bv)
		}
	case dex.OpIntToFloat:
		if bv, ok := ci(in.B); ok {
			setF(float64(bv))
		}
	case dex.OpFloatToInt:
		if bv, ok := cf(in.B); ok && !math.IsNaN(bv) && bv >= math.MinInt64 && bv <= math.MaxInt64 {
			setI(int64(bv))
		}
	}
}

// cseKey identifies a pure computation for local value numbering.
type cseKey struct {
	op   dex.Op
	b, c int
	imm  int64
	f    float64
}

// localCSE removes repeated pure computations within a block (the gvn pass,
// local flavor).
func localCSE(g *hgraph.Graph) {
	for _, b := range g.Blocks {
		avail := map[cseKey]int{} // computation -> register holding it
		for i := range b.Insns {
			in := &b.Insns[i]
			var key cseKey
			pure := false
			switch in.Op {
			case dex.OpAddInt, dex.OpSubInt, dex.OpMulInt, dex.OpAndInt, dex.OpOrInt,
				dex.OpXorInt, dex.OpShlInt, dex.OpShrInt, dex.OpNegInt,
				dex.OpAddFloat, dex.OpSubFloat, dex.OpMulFloat, dex.OpNegFloat,
				dex.OpIntToFloat, dex.OpFloatToInt, dex.OpCmpFloat,
				dex.OpConstInt, dex.OpConstFloat:
				key = cseKey{op: in.Op, b: in.B, c: in.C, imm: in.Imm, f: in.F}
				pure = true
			}
			if pure {
				if r, ok := avail[key]; ok {
					if r == in.A {
						*in = dex.Insn{Op: dex.OpNop} // value already there
						continue
					}
					*in = dex.Insn{Op: dex.OpMove, A: in.A, B: r}
				}
			}
			if w := hgraph.InsnDef(g.Prog, in); w >= 0 {
				// Invalidate everything reading or producing w.
				for k, r := range avail {
					if r == w || k.b == w || k.c == w {
						delete(avail, k)
					}
				}
				if pure && in.Op != dex.OpMove {
					avail[key] = w
				}
			}
		}
	}
}

// copyProp rewrites uses of moved registers to their sources within a block.
func copyProp(g *hgraph.Graph) {
	var buf [8]int
	for _, b := range g.Blocks {
		src := map[int]int{} // reg -> copy source
		for i := range b.Insns {
			in := &b.Insns[i]
			rewrite := func(r int) int {
				if s, ok := src[r]; ok {
					return s
				}
				return r
			}
			_ = buf
			switch in.Op {
			case dex.OpNop, dex.OpConstInt, dex.OpConstFloat, dex.OpGoto, dex.OpReturnVoid,
				dex.OpNewInstance, dex.OpSLoadInt, dex.OpSLoadFloat, dex.OpSLoadRef:
			case dex.OpMove, dex.OpNegInt, dex.OpNegFloat, dex.OpIntToFloat, dex.OpFloatToInt,
				dex.OpArrayLen, dex.OpNewArrayInt, dex.OpNewArrayFloat, dex.OpNewArrayRef,
				dex.OpFLoadInt, dex.OpFLoadFloat, dex.OpFLoadRef:
				in.B = rewrite(in.B)
			case dex.OpReturn, dex.OpThrow, dex.OpSStoreInt, dex.OpSStoreFloat, dex.OpSStoreRef:
				in.A = rewrite(in.A)
			case dex.OpFStoreInt, dex.OpFStoreFloat, dex.OpFStoreRef:
				in.A = rewrite(in.A)
				in.B = rewrite(in.B)
			case dex.OpAStoreInt, dex.OpAStoreFloat, dex.OpAStoreRef:
				in.A = rewrite(in.A)
				in.B = rewrite(in.B)
				in.C = rewrite(in.C)
			case dex.OpInvokeStatic, dex.OpInvokeVirtual, dex.OpInvokeNative:
				for j := range in.Args {
					in.Args[j] = rewrite(in.Args[j])
				}
			default:
				in.B = rewrite(in.B)
				in.C = rewrite(in.C)
			}
			if w := hgraph.InsnDef(g.Prog, in); w >= 0 {
				delete(src, w)
				for r, s := range src {
					if s == w {
						delete(src, r)
					}
				}
				if in.Op == dex.OpMove {
					if in.B == in.A {
						*in = dex.Insn{Op: dex.OpNop} // self-move
					} else {
						src[in.A] = in.B
					}
				}
			}
		}
	}
}

// deadCode removes side-effect-free instructions whose results are never
// read (the dead_code_elimination pass), using global liveness.
func deadCode(g *hgraph.Graph) {
	liveOut := g.Liveness()
	var buf [8]int
	for _, b := range g.Blocks {
		live := liveOut[b].Clone()
		keep := make([]bool, len(b.Insns))
		for i := len(b.Insns) - 1; i >= 0; i-- {
			in := &b.Insns[i]
			w := hgraph.InsnDef(g.Prog, in)
			dead := w >= 0 && !live[w] && !hgraph.InsnHasSideEffects(in)
			keep[i] = !dead
			if dead {
				continue
			}
			if w >= 0 {
				delete(live, w)
			}
			for _, r := range hgraph.InsnUses(in, buf[:]) {
				live[r] = true
			}
		}
		var out []dex.Insn
		for i, k := range keep {
			if k {
				out = append(out, b.Insns[i])
			}
		}
		if len(out) == 0 {
			out = []dex.Insn{{Op: dex.OpNop}}
		}
		b.Insns = out
	}
}
