// Package aot is the baseline "Android compiler": a safety-first ahead-of-
// time compiler from dex bytecode to machine code. It mirrors the character
// the paper ascribes to the Android toolchain (§2, §3.5): a small set of
// guaranteed-safe optimizations, conservative code generation (every bounds
// check kept, one GC check per loop), and pathological method shapes it
// refuses to compile.
//
// The optimization pipeline (the "18 distinct optimizations" of the
// Android 10 compiler) comprises, in order: loop/dominator analysis,
// constant folding, instruction simplification, local value numbering,
// copy propagation, a second folding round, global-liveness dead code
// elimination, integer intrinsic recognition, safepoint placement, implicit
// null checks, indexed-addressing selection, and linear-scan register
// allocation.
package aot

import (
	"fmt"

	"replayopt/internal/dex"
	"replayopt/internal/hgraph"
	"replayopt/internal/machine"
)

// ErrUncompilable marks methods the baseline compiler rejects; they stay
// interpreted (the Fig. 8 "Uncompilable" category).
type ErrUncompilable struct{ Method string }

func (e *ErrUncompilable) Error() string {
	return fmt.Sprintf("aot: method %s is not compilable", e.Method)
}

// CompileMethod compiles one method with the baseline pipeline.
func CompileMethod(prog *dex.Program, id dex.MethodID) (*machine.Fn, error) {
	m := prog.Methods[id]
	if m.Uncompilable {
		return nil, &ErrUncompilable{Method: m.Name}
	}
	g, err := hgraph.Build(prog, m)
	if err != nil {
		return nil, err
	}
	constantFold(g)
	localCSE(g)
	copyProp(g)
	deadCode(g) // clear dead copies so the second CSE round sees reuse
	localCSE(g)
	copyProp(g)
	constantFold(g)
	deadCode(g)
	fn := lower(g, lowerOpts{fusedAddressing: true, intIntrinsics: true})
	fn.Method = id
	// ART's backend encodes immediates, selects multiply-accumulate forms,
	// and schedules for the big cores; the baseline gets the same machine
	// passes (it is conservative about *transformations*, not codegen).
	mopts := machine.LowerOpts{FuseLiterals: true, FuseMaddInt: true, Schedule: true, NumRegs: 26}
	if err := machine.Finalize(fn, m.NumArgs, mopts); err != nil {
		return nil, err
	}
	return fn, nil
}

// Compile compiles every compilable method of prog. Uncompilable methods are
// skipped (they fall back to the interpreter at run time).
func Compile(prog *dex.Program) (*machine.Program, error) {
	out := machine.NewProgram()
	for i := range prog.Methods {
		fn, err := CompileMethod(prog, dex.MethodID(i))
		if err != nil {
			if _, ok := err.(*ErrUncompilable); ok {
				continue
			}
			return nil, fmt.Errorf("aot: compiling %s: %w", prog.Methods[i].Name, err)
		}
		out.Fns[dex.MethodID(i)] = fn
	}
	return out, nil
}
