// Package rt implements the managed runtime's memory model: heap object and
// array layout over the paged address space, the statics segment, the boot
// image, and allocation with GC-safepoint pressure.
//
// Everything the managed program can observe lives inside the address space,
// which is what makes page-granularity capture (§3.2) equivalent to
// capturing program behavior.
package rt

import (
	"fmt"
	"math"

	"replayopt/internal/dex"
	"replayopt/internal/mem"
)

// Segment base addresses. The app's own segments sit well away from each
// other so they can grow; the replay loader deliberately overlaps some of
// them to exercise collision handling.
const (
	BootBase    mem.Addr = 0x10_0000_0000 // boot image: runtime immutable objects, common across processes
	CodeBase    mem.Addr = 0x20_0000_0000 // memory-mapped compiled code (file-backed)
	GCAuxBase   mem.Addr = 0x30_0000_0000 // GC auxiliary structures (cannot be read-protected)
	StaticsBase mem.Addr = 0x40_0000_0000 // application statics
	HeapBase    mem.Addr = 0x50_0000_0000 // application heap
)

// DefaultBootImageBytes is the boot image size: the paper's Fig. 11 reports
// ~12.6 MB of boot-common pages per capture.
const DefaultBootImageBytes = 12600 * 1024

// DefaultGCAuxBytes sizes the non-protectable runtime auxiliary region.
const DefaultGCAuxBytes = 192 * 1024

// heapChunk is the granularity at which heap pages are mapped on demand.
const heapChunk = 256 * 1024

// GCThreshold is the allocation volume between simulated collections; the
// capture mechanism postpones captures when a collection is imminent.
const GCThreshold = 1 << 20

// Object header tags (low byte of the header word).
const (
	tagArrayInt   = 1
	tagArrayFloat = 2
	tagArrayRef   = 3
	tagObject     = 4
)

const headerSize = 8

// TrapKind classifies runtime traps.
type TrapKind uint8

// Trap kinds.
const (
	TrapNull TrapKind = iota
	TrapBounds
	TrapDivZero
	TrapBadRef
	TrapNegSize
	TrapOOM
)

func (k TrapKind) String() string {
	switch k {
	case TrapNull:
		return "null dereference"
	case TrapBounds:
		return "array index out of bounds"
	case TrapDivZero:
		return "division by zero"
	case TrapBadRef:
		return "invalid heap reference"
	case TrapNegSize:
		return "negative array size"
	case TrapOOM:
		return "out of heap"
	}
	return "trap"
}

// Trap is a runtime exception (NullPointerException and friends).
type Trap struct {
	Kind TrapKind
	Addr mem.Addr
}

func (t *Trap) Error() string {
	return fmt.Sprintf("rt: %s (addr %#x)", t.Kind, uint64(t.Addr))
}

// Config sizes a process's segments.
type Config struct {
	BootImageBytes uint64
	GCAuxBytes     uint64
	HeapLimit      uint64 // maximum heap size; 0 means 64 MiB
	CodeBytes      uint64 // mapped code size; 0 means 256 KiB
}

func (c *Config) fill() {
	if c.BootImageBytes == 0 {
		c.BootImageBytes = DefaultBootImageBytes
	}
	if c.GCAuxBytes == 0 {
		c.GCAuxBytes = DefaultGCAuxBytes
	}
	if c.HeapLimit == 0 {
		c.HeapLimit = 64 << 20
	}
	if c.CodeBytes == 0 {
		c.CodeBytes = 256 << 10
	}
}

// Allocator-state slots inside the GC-aux region. Keeping mutable runtime
// state *in memory* means a capture automatically snapshots it and a replay
// automatically restores it — the same property the real Android runtime has.
const (
	auxHeapNext     = GCAuxBase      // bump pointer
	auxAllocSinceGC = GCAuxBase + 8  // bytes allocated since last collection
	auxGCRuns       = GCAuxBase + 16 // collections so far
)

// Process is a running application instance: its program, address space, and
// heap bookkeeping. All mutable runtime state lives inside the address
// space; the Go-side fields only cache the mapping extent.
type Process struct {
	Prog  *dex.Program
	Space *mem.AddressSpace

	heapMax   mem.Addr // current end of mapped heap
	heapLimit mem.Addr
}

// NewProcess maps a fresh process image for prog.
func NewProcess(prog *dex.Program, cfg Config) *Process {
	cfg.fill()
	s := mem.NewAddressSpace()
	s.MapRegion(mem.Region{Start: BootBase, End: BootBase + mem.Addr(roundUp(cfg.BootImageBytes)), Prot: mem.ProtRead, Name: "boot.art", BootCommon: true})
	s.MapRegion(mem.Region{Start: CodeBase, End: CodeBase + mem.Addr(roundUp(cfg.CodeBytes)), Prot: mem.ProtRX, Name: prog.Name + ".oat", FileBacked: true})
	s.MapRegion(mem.Region{Start: GCAuxBase, End: GCAuxBase + mem.Addr(roundUp(cfg.GCAuxBytes)), Prot: mem.ProtRW, Name: "gc-aux", RuntimeAux: true})
	nglobals := uint64(len(prog.Globals))
	if nglobals == 0 {
		nglobals = 1
	}
	s.Map(StaticsBase, roundUp(nglobals*8), mem.ProtRW, "statics")
	p := &Process{
		Prog:      prog,
		Space:     s,
		heapMax:   HeapBase,
		heapLimit: HeapBase + mem.Addr(cfg.HeapLimit),
	}
	p.setAux(auxHeapNext, uint64(HeapBase))
	p.growHeap(heapChunk)
	return p
}

// Attach wraps an address space restored by the replay loader in a Process.
// Allocator state is read back from the gc-aux pages; the heap extent is
// recovered from the region map.
func Attach(prog *dex.Program, s *mem.AddressSpace, cfg Config) *Process {
	cfg.fill()
	p := &Process{
		Prog:      prog,
		Space:     s,
		heapMax:   HeapBase,
		heapLimit: HeapBase + mem.Addr(cfg.HeapLimit),
	}
	for _, r := range s.Regions() {
		if r.Name == "[heap]" && r.End > p.heapMax {
			p.heapMax = r.End
		}
	}
	return p
}

func (p *Process) aux(a mem.Addr) uint64 {
	v, err := p.Space.ReadU64(a)
	if err != nil {
		panic("rt: gc-aux region unreadable: " + err.Error())
	}
	return v
}

func (p *Process) setAux(a mem.Addr, v uint64) {
	if err := p.Space.WriteU64(a, v); err != nil {
		panic("rt: gc-aux region unwritable: " + err.Error())
	}
}

// GCRuns reports the number of simulated collections so far.
func (p *Process) GCRuns() uint64 { return p.aux(auxGCRuns) }

// AllocClock reports the bytes allocated since the last collection.
func (p *Process) AllocClock() uint64 { return p.aux(auxAllocSinceGC) }

// ForceGC runs a collection immediately (the runtime exposes explicit GC;
// the capture scheduler uses it when a capture keeps being postponed by an
// allocation clock that hovers below the automatic threshold).
func (p *Process) ForceGC() {
	p.setAux(auxAllocSinceGC, 0)
	p.setAux(auxGCRuns, p.aux(auxGCRuns)+1)
}

func roundUp(n uint64) uint64 {
	return (n + mem.PageSize - 1) &^ (mem.PageSize - 1)
}

func (p *Process) growHeap(n uint64) {
	n = roundUp(n)
	if n < heapChunk {
		n = heapChunk
	}
	p.Space.Map(p.heapMax, n, mem.ProtRW, "[heap]")
	p.heapMax += mem.Addr(n)
}

// HeapUsed returns the number of heap bytes allocated so far.
func (p *Process) HeapUsed() uint64 { return p.aux(auxHeapNext) - uint64(HeapBase) }

// GCImminent reports whether the next safepoint is likely to trigger a
// collection; captures are postponed while true (§3.2 step 1).
func (p *Process) GCImminent() bool { return p.aux(auxAllocSinceGC) > GCThreshold*3/4 }

// Safepoint is the runtime's GC check entry: returns true (and resets the
// allocation clock) when a simulated collection runs.
func (p *Process) Safepoint() bool {
	if p.aux(auxAllocSinceGC) > GCThreshold {
		p.setAux(auxAllocSinceGC, 0)
		p.setAux(auxGCRuns, p.aux(auxGCRuns)+1)
		return true
	}
	return false
}

// alloc reserves n bytes (8-byte aligned) and returns the base address.
func (p *Process) alloc(n uint64) (mem.Addr, error) {
	n = (n + 7) &^ 7
	next := mem.Addr(p.aux(auxHeapNext))
	if next+mem.Addr(n) > p.heapLimit {
		return 0, &Trap{Kind: TrapOOM, Addr: next}
	}
	for next+mem.Addr(n) > p.heapMax {
		p.growHeap(n)
	}
	p.setAux(auxHeapNext, uint64(next)+n)
	p.setAux(auxAllocSinceGC, p.aux(auxAllocSinceGC)+n)
	return next, nil
}

// NewArray allocates an array of the given element kind and length.
func (p *Process) NewArray(kind dex.Kind, length int64) (mem.Addr, error) {
	if length < 0 {
		return 0, &Trap{Kind: TrapNegSize}
	}
	a, err := p.alloc(headerSize + uint64(length)*8)
	if err != nil {
		return 0, err
	}
	var tag uint64
	switch kind {
	case dex.KindInt:
		tag = tagArrayInt
	case dex.KindFloat:
		tag = tagArrayFloat
	case dex.KindRef:
		tag = tagArrayRef
	default:
		panic("rt: bad array kind")
	}
	if err := p.Space.WriteU64(a, tag|uint64(length)<<8); err != nil {
		return 0, err
	}
	return a, nil
}

// NewObject allocates an instance of class cid with zeroed fields.
func (p *Process) NewObject(cid dex.ClassID) (mem.Addr, error) {
	c := p.Prog.Classes[cid]
	a, err := p.alloc(headerSize + uint64(len(c.Fields))*8)
	if err != nil {
		return 0, err
	}
	if err := p.Space.WriteU64(a, tagObject|uint64(cid)<<8); err != nil {
		return 0, err
	}
	return a, nil
}

func (p *Process) header(ref mem.Addr) (uint64, error) {
	if ref == 0 {
		return 0, &Trap{Kind: TrapNull}
	}
	if ref < HeapBase || ref >= p.heapMax {
		return 0, &Trap{Kind: TrapBadRef, Addr: ref}
	}
	// Every ArrLen/Bound/field access funnels through here; answer from the
	// space's translation cache when possible.
	if v, ok := p.Space.TryReadU64(ref); ok {
		return v, nil
	}
	return p.Space.ReadU64(ref)
}

// ArrayLen returns the length of the array at ref.
func (p *Process) ArrayLen(ref mem.Addr) (int64, error) {
	h, err := p.header(ref)
	if err != nil {
		return 0, err
	}
	if t := h & 0xff; t != tagArrayInt && t != tagArrayFloat && t != tagArrayRef {
		return 0, &Trap{Kind: TrapBadRef, Addr: ref}
	}
	return int64(h >> 8), nil
}

// ArrayElemAddr bounds-checks idx and returns the element address.
func (p *Process) ArrayElemAddr(ref mem.Addr, idx int64) (mem.Addr, error) {
	n, err := p.ArrayLen(ref)
	if err != nil {
		return 0, err
	}
	if idx < 0 || idx >= n {
		return 0, &Trap{Kind: TrapBounds, Addr: ref}
	}
	return ref + headerSize + mem.Addr(idx*8), nil
}

// ArrayGet loads element idx as raw 64 bits.
func (p *Process) ArrayGet(ref mem.Addr, idx int64) (uint64, error) {
	a, err := p.ArrayElemAddr(ref, idx)
	if err != nil {
		return 0, err
	}
	return p.Space.ReadU64(a)
}

// ArraySet stores raw 64 bits into element idx.
func (p *Process) ArraySet(ref mem.Addr, idx int64, v uint64) error {
	a, err := p.ArrayElemAddr(ref, idx)
	if err != nil {
		return err
	}
	return p.Space.WriteU64(a, v)
}

// ObjectClass returns the dynamic class of the object at ref.
func (p *Process) ObjectClass(ref mem.Addr) (dex.ClassID, error) {
	h, err := p.header(ref)
	if err != nil {
		return 0, err
	}
	if h&0xff != tagObject {
		return 0, &Trap{Kind: TrapBadRef, Addr: ref}
	}
	return dex.ClassID(h >> 8), nil
}

// FieldAddr returns the address of field slot of the object at ref.
func (p *Process) FieldAddr(ref mem.Addr, slot int64) (mem.Addr, error) {
	if _, err := p.ObjectClass(ref); err != nil {
		return 0, err
	}
	return ref + headerSize + mem.Addr(slot*8), nil
}

// FieldGet loads a field as raw 64 bits.
func (p *Process) FieldGet(ref mem.Addr, slot int64) (uint64, error) {
	a, err := p.FieldAddr(ref, slot)
	if err != nil {
		return 0, err
	}
	return p.Space.ReadU64(a)
}

// FieldSet stores raw 64 bits into a field.
func (p *Process) FieldSet(ref mem.Addr, slot int64, v uint64) error {
	a, err := p.FieldAddr(ref, slot)
	if err != nil {
		return err
	}
	return p.Space.WriteU64(a, v)
}

// GlobalAddr returns the address of static slot.
func (p *Process) GlobalAddr(slot int64) mem.Addr { return StaticsBase + mem.Addr(slot*8) }

// GlobalGet loads static slot.
func (p *Process) GlobalGet(slot int64) (uint64, error) {
	return p.Space.ReadU64(p.GlobalAddr(slot))
}

// GlobalSet stores static slot.
func (p *Process) GlobalSet(slot int64, v uint64) error {
	return p.Space.WriteU64(p.GlobalAddr(slot), v)
}

// F2U and U2F convert between float64 values and their raw register bits.
func F2U(f float64) uint64 { return math.Float64bits(f) }

// U2F converts raw register bits to a float64.
func U2F(u uint64) float64 { return math.Float64frombits(u) }
