package rt

import (
	"testing"
	"testing/quick"

	"replayopt/internal/dex"
	"replayopt/internal/mem"
)

func testProg() *dex.Program {
	p := &dex.Program{
		Name: "t",
		Classes: []*dex.Class{
			{Name: "Point", Super: dex.NoClass, Fields: []dex.Field{
				{Name: "x", Kind: dex.KindInt},
				{Name: "y", Kind: dex.KindFloat},
			}},
		},
		Globals: []dex.Global{{Name: "g0", Kind: dex.KindInt}, {Name: "g1", Kind: dex.KindFloat}},
		Methods: []*dex.Method{{Name: "main", Class: dex.NoClass, NumRegs: 1,
			Code: []dex.Insn{{Op: dex.OpReturnVoid}}}},
	}
	p.BuildIndex()
	return p
}

func TestProcessSegments(t *testing.T) {
	p := NewProcess(testProg(), Config{})
	var boot, code, gcaux, statics, heap bool
	for _, r := range p.Space.Regions() {
		switch r.Name {
		case "boot.art":
			boot = r.BootCommon
		case "t.oat":
			code = r.FileBacked
		case "gc-aux":
			gcaux = r.RuntimeAux
		case "statics":
			statics = true
		case "[heap]":
			heap = true
		}
	}
	if !boot || !code || !gcaux || !statics || !heap {
		t.Fatalf("missing or misflagged segments: boot=%v code=%v gcaux=%v statics=%v heap=%v",
			boot, code, gcaux, statics, heap)
	}
}

func TestArrayRoundTripAndBounds(t *testing.T) {
	p := NewProcess(testProg(), Config{})
	a, err := p.NewArray(dex.KindInt, 10)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.ArrayLen(a)
	if err != nil || n != 10 {
		t.Fatalf("ArrayLen = %d, %v; want 10", n, err)
	}
	if err := p.ArraySet(a, 3, 42); err != nil {
		t.Fatal(err)
	}
	v, err := p.ArrayGet(a, 3)
	if err != nil || v != 42 {
		t.Fatalf("ArrayGet = %d, %v", v, err)
	}
	if _, err := p.ArrayGet(a, 10); err == nil {
		t.Error("out-of-bounds read succeeded")
	} else if tr, ok := err.(*Trap); !ok || tr.Kind != TrapBounds {
		t.Errorf("err = %v, want bounds trap", err)
	}
	if _, err := p.ArrayGet(a, -1); err == nil {
		t.Error("negative-index read succeeded")
	}
	if _, err := p.NewArray(dex.KindInt, -5); err == nil {
		t.Error("negative-size allocation succeeded")
	}
}

func TestNullAndBadRefTraps(t *testing.T) {
	p := NewProcess(testProg(), Config{})
	if _, err := p.ArrayLen(0); err == nil {
		t.Error("null array length succeeded")
	} else if tr := err.(*Trap); tr.Kind != TrapNull {
		t.Errorf("kind = %v, want null", tr.Kind)
	}
	if _, err := p.FieldGet(0x123, 0); err == nil {
		t.Error("bad-ref field read succeeded")
	}
}

func TestObjectFieldsAndDynamicClass(t *testing.T) {
	p := NewProcess(testProg(), Config{})
	o, err := p.NewObject(0)
	if err != nil {
		t.Fatal(err)
	}
	cid, err := p.ObjectClass(o)
	if err != nil || cid != 0 {
		t.Fatalf("ObjectClass = %d, %v", cid, err)
	}
	if err := p.FieldSet(o, 1, F2U(3.5)); err != nil {
		t.Fatal(err)
	}
	v, err := p.FieldGet(o, 1)
	if err != nil || U2F(v) != 3.5 {
		t.Fatalf("FieldGet = %v, %v", U2F(v), err)
	}
	// Fields start zeroed.
	v, err = p.FieldGet(o, 0)
	if err != nil || v != 0 {
		t.Fatalf("fresh field = %d, %v; want 0", v, err)
	}
}

func TestGlobals(t *testing.T) {
	p := NewProcess(testProg(), Config{})
	if err := p.GlobalSet(1, F2U(2.25)); err != nil {
		t.Fatal(err)
	}
	v, err := p.GlobalGet(1)
	if err != nil || U2F(v) != 2.25 {
		t.Fatalf("GlobalGet = %v, %v", U2F(v), err)
	}
}

func TestHeapGrowsOnDemand(t *testing.T) {
	p := NewProcess(testProg(), Config{HeapLimit: 8 << 20})
	var last mem.Addr
	for i := 0; i < 40; i++ {
		a, err := p.NewArray(dex.KindFloat, 16*1024) // 128 KiB each
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if a <= last {
			t.Fatal("bump allocator went backwards")
		}
		last = a
	}
	if p.HeapUsed() < 40*16*1024*8 {
		t.Errorf("HeapUsed = %d, too small", p.HeapUsed())
	}
}

func TestHeapLimitTrapsOOM(t *testing.T) {
	p := NewProcess(testProg(), Config{HeapLimit: 1 << 20})
	_, err := p.NewArray(dex.KindInt, 1<<20)
	if err == nil {
		t.Fatal("over-limit allocation succeeded")
	}
	if tr := err.(*Trap); tr.Kind != TrapOOM {
		t.Errorf("kind = %v, want OOM", tr.Kind)
	}
}

func TestGCPressureAndSafepoint(t *testing.T) {
	p := NewProcess(testProg(), Config{})
	if p.GCImminent() {
		t.Fatal("fresh process already GC-imminent")
	}
	for !p.GCImminent() {
		if _, err := p.NewArray(dex.KindInt, 4096); err != nil {
			t.Fatal(err)
		}
	}
	// Keep allocating past the threshold, then a safepoint must collect.
	for p.AllocClock() <= GCThreshold {
		if _, err := p.NewArray(dex.KindInt, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Safepoint() {
		t.Fatal("safepoint did not collect past threshold")
	}
	if p.GCRuns() != 1 || p.GCImminent() {
		t.Errorf("GCRuns = %d, imminent = %v after collection", p.GCRuns(), p.GCImminent())
	}
}

// Property: arrays behave like Go slices under arbitrary in-bounds
// write/read sequences.
func TestQuickArraySemantics(t *testing.T) {
	p := NewProcess(testProg(), Config{})
	f := func(writes []uint8, vals []uint64) bool {
		const n = 32
		ref, err := p.NewArray(dex.KindInt, n)
		if err != nil {
			return false
		}
		model := make([]uint64, n)
		for i, w := range writes {
			if len(vals) == 0 {
				break
			}
			idx := int64(w) % n
			v := vals[i%len(vals)]
			model[idx] = v
			if p.ArraySet(ref, idx, v) != nil {
				return false
			}
		}
		for i, want := range model {
			got, err := p.ArrayGet(ref, int64(i))
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		y := U2F(F2U(x))
		return y == x || (x != x && y != y) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
