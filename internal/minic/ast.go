package minic

// TypeKind discriminates minic types.
type TypeKind uint8

// Type kinds.
const (
	TVoid TypeKind = iota
	TInt
	TFloat
	TBool
	TClass
	TArray
	TNull // type of the null literal; assignable to any ref
)

// Type is a minic static type.
type Type struct {
	K     TypeKind
	Class string // K == TClass
	Elem  *Type  // K == TArray
}

// Predefined scalar types.
var (
	VoidType  = Type{K: TVoid}
	IntType   = Type{K: TInt}
	FloatType = Type{K: TFloat}
	BoolType  = Type{K: TBool}
	NullType  = Type{K: TNull}
)

// ArrayOf returns the array type with element type e.
func ArrayOf(e Type) Type { elem := e; return Type{K: TArray, Elem: &elem} }

// ClassType returns the class type named name.
func ClassType(name string) Type { return Type{K: TClass, Class: name} }

// IsRef reports whether t is stored as a heap reference.
func (t Type) IsRef() bool { return t.K == TClass || t.K == TArray || t.K == TNull }

func (t Type) String() string {
	switch t.K {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TClass:
		return t.Class
	case TArray:
		return t.Elem.String() + "[]"
	case TNull:
		return "null"
	}
	return "?"
}

// Equal reports type identity.
func (t Type) Equal(o Type) bool {
	if t.K != o.K {
		return false
	}
	switch t.K {
	case TClass:
		return t.Class == o.Class
	case TArray:
		return t.Elem.Equal(*o.Elem)
	}
	return true
}

// File is one parsed compilation unit.
type File struct {
	Name    string
	Globals []*GlobalDecl
	Classes []*ClassDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global variable.
type GlobalDecl struct {
	Name string
	Type Type
	Line int
}

// FieldDecl declares one instance field.
type FieldDecl struct {
	Name string
	Type Type
	Line int
}

// ClassDecl declares a class.
type ClassDecl struct {
	Name    string
	Super   string // "" for roots
	Fields  []*FieldDecl
	Methods []*FuncDecl
	Line    int
}

// Param is a function/method parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl declares a function or a method (Class != "").
type FuncDecl struct {
	Name         string
	Class        string // owning class, "" for free functions
	Params       []Param
	Ret          Type
	Body         *Block
	Uncompilable bool // @uncompilable annotation
	Line         int
}

// QName returns the fully qualified method name.
func (f *FuncDecl) QName() string {
	if f.Class == "" {
		return f.Name
	}
	return f.Class + "." + f.Name
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list with its own scope.
type Block struct{ Stmts []Stmt }

// VarDecl declares a local with an optional initializer.
type VarDecl struct {
	Name string
	Type Type
	Init Expr // may be nil
	Line int
}

// Assign stores Rhs into an lvalue (Ident, Index, or Field expression).
type Assign struct {
	Lhs  Expr
	Rhs  Expr
	Line int
}

// If is a conditional with optional else.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// While is a pre-test loop.
type While struct {
	Cond Expr
	Body *Block
}

// For is C-style: Init and Post may be nil.
type For struct {
	Init Stmt // VarDecl or Assign
	Cond Expr
	Post Stmt // Assign or ExprStmt
	Body *Block
}

// Return exits the function; Value is nil for void.
type Return struct {
	Value Expr
	Line  int
}

// Break exits the innermost loop.
type Break struct{ Line int }

// Continue jumps to the innermost loop's post/condition.
type Continue struct{ Line int }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct{ X Expr }

// Throw raises a managed exception.
type Throw struct {
	Value Expr
	Line  int
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*Throw) stmtNode()    {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Pos() int
}

type exprBase struct{ Line int }

func (e exprBase) Pos() int { return e.Line }
func (exprBase) exprNode()  {}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Value float64
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Value bool
}

// NullLit is the null reference.
type NullLit struct{ exprBase }

// This is the receiver inside a method.
type This struct{ exprBase }

// Ident references a local, parameter, or global.
type Ident struct {
	exprBase
	Name string
}

// Unary is -x or !x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is x op y; && and || short-circuit.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Call invokes a free function or a builtin.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// MethodCall invokes a virtual method on Recv.
type MethodCall struct {
	exprBase
	Recv Expr
	Name string
	Args []Expr
}

// Field reads Recv.Name.
type Field struct {
	exprBase
	Recv Expr
	Name string
}

// Index reads Arr[Idx].
type Index struct {
	exprBase
	Arr Expr
	Idx Expr
}

// NewArray is new T[size] with optional nested dimensions via elem type.
type NewArray struct {
	exprBase
	Elem Type
	Size Expr
}

// NewObject is new C().
type NewObject struct {
	exprBase
	Class string
}

// Builtins maps minic builtin function names to their native or intrinsic
// lowering. Conversions (itof/ftoi) and len are handled specially.
var Builtins = map[string]string{
	"sqrt": "Math.sqrt", "sin": "Math.sin", "cos": "Math.cos",
	"log": "Math.log", "exp": "Math.exp", "pow": "Math.pow",
	"floor": "Math.floor", "absf": "Math.absF", "absi": "Math.absI",
	"mini": "Math.minI", "maxi": "Math.maxI",
	"clock_ms": "System.clockMillis",
	"rand_int": "Random.nextInt", "rand_float": "Random.nextFloat",
	"print_int": "IO.printInt", "print_float": "IO.printFloat",
	"draw_frame": "IO.drawFrame", "play_sound": "IO.playSound",
	"read_input": "IO.readInput", "net_send": "Net.send",
	"jni_mix": "Sys.mix",
}

// isBuiltinName reports whether name is any builtin, including the
// special-cased ones.
func isBuiltinName(name string) bool {
	if _, ok := Builtins[name]; ok {
		return true
	}
	switch name {
	case "itof", "ftoi", "len":
		return true
	}
	return false
}
