package minic

import (
	"replayopt/internal/dex"
)

// fngen compiles one function/method body to bytecode.
type fngen struct {
	c      *compiler
	decl   *FuncDecl
	method *dex.Method

	code      []dex.Insn
	nextReg   int
	freeTemps []int
	isLocal   map[int]bool // registers pinned to named locals/params

	scopes []map[string]localVar
	loops  []*loopCtx

	hasThrow bool
}

type localVar struct {
	reg int
	ty  Type
}

type loopCtx struct {
	breakL    *label
	continueL *label
}

// label supports forward references with backpatching.
type label struct {
	pc     int // -1 until bound
	fixups []int
}

func (g *fngen) newLabel() *label { return &label{pc: -1} }

func (g *fngen) bind(l *label) {
	l.pc = len(g.code)
	for _, at := range l.fixups {
		g.code[at].Imm = int64(l.pc)
	}
	l.fixups = nil
}

func (g *fngen) emit(in dex.Insn) int {
	g.code = append(g.code, in)
	return len(g.code) - 1
}

func (g *fngen) emitBranch(op dex.Op, b, c int, l *label) {
	at := g.emit(dex.Insn{Op: op, B: b, C: c, Imm: -1})
	if l.pc >= 0 {
		g.code[at].Imm = int64(l.pc)
	} else {
		l.fixups = append(l.fixups, at)
	}
}

func (g *fngen) emitGoto(l *label) {
	at := g.emit(dex.Insn{Op: dex.OpGoto, Imm: -1})
	if l.pc >= 0 {
		g.code[at].Imm = int64(l.pc)
	} else {
		l.fixups = append(l.fixups, at)
	}
}

func (g *fngen) alloc() int {
	if n := len(g.freeTemps); n > 0 {
		r := g.freeTemps[n-1]
		g.freeTemps = g.freeTemps[:n-1]
		return r
	}
	r := g.nextReg
	g.nextReg++
	return r
}

// free releases a temporary register; locals are never recycled.
func (g *fngen) free(r int) {
	if g.isLocal[r] {
		return
	}
	g.freeTemps = append(g.freeTemps, r)
}

func (g *fngen) pushScope() { g.scopes = append(g.scopes, map[string]localVar{}) }
func (g *fngen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *fngen) declare(name string, ty Type, line int) (int, error) {
	top := g.scopes[len(g.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, g.c.errf(line, "duplicate variable %s", name)
	}
	r := g.nextReg
	g.nextReg++
	g.isLocal[r] = true
	top[name] = localVar{reg: r, ty: ty}
	return r, nil
}

func (g *fngen) lookup(name string) (localVar, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if v, ok := g.scopes[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

// compileFunc generates the body for fi's shell method.
func (c *compiler) compileFunc(fd *FuncDecl, fi *funcInfo) error {
	g := &fngen{c: c, decl: fd, method: c.prog.Methods[fi.id], isLocal: map[int]bool{}}
	g.pushScope()
	// Parameters occupy the first registers.
	if fd.Class != "" {
		g.scopes[0]["this"] = localVar{reg: 0, ty: ClassType(fd.Class)}
		g.isLocal[0] = true
		g.nextReg = 1
	}
	for _, p := range fd.Params {
		r := g.nextReg
		g.nextReg++
		g.isLocal[r] = true
		g.scopes[0][p.Name] = localVar{reg: r, ty: p.Type}
	}
	if err := g.genBlock(fd.Body); err != nil {
		return err
	}
	// Always append a default return: it terminates fall-off paths and
	// anchors labels bound at the end of the body. If unreachable, it is
	// dead code the optimizers remove.
	if fd.Ret.K == TVoid {
		g.emit(dex.Insn{Op: dex.OpReturnVoid})
	} else {
		r := g.alloc()
		g.emit(dex.Insn{Op: dex.OpConstInt, A: r, Imm: 0})
		g.emit(dex.Insn{Op: dex.OpReturn, A: r})
	}
	m := g.method
	m.Code = g.code
	m.NumRegs = g.nextReg
	m.HasThrow = g.hasThrow
	if m.NumRegs < m.NumArgs {
		m.NumRegs = m.NumArgs
	}
	return nil
}

func (g *fngen) genBlock(b *Block) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *fngen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return g.genBlock(st)

	case *VarDecl:
		if err := g.c.checkType(st.Type, st.Line); err != nil {
			return err
		}
		r, err := g.declare(st.Name, st.Type, st.Line)
		if err != nil {
			return err
		}
		if st.Init != nil {
			vr, vt, owned, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			if err := g.checkAssignable(st.Type, vt, st.Line); err != nil {
				return err
			}
			g.emit(dex.Insn{Op: dex.OpMove, A: r, B: vr})
			if owned {
				g.free(vr)
			}
		} else {
			g.emit(dex.Insn{Op: dex.OpConstInt, A: r, Imm: 0})
		}
		return nil

	case *Assign:
		return g.genAssign(st)

	case *If:
		lt, lf, end := g.newLabel(), g.newLabel(), g.newLabel()
		if err := g.genCond(st.Cond, lt, lf); err != nil {
			return err
		}
		g.bind(lt)
		if err := g.genBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			g.emitGoto(end)
			g.bind(lf)
			if err := g.genBlock(st.Else); err != nil {
				return err
			}
			g.bind(end)
		} else {
			g.bind(lf)
		}
		return nil

	case *While:
		cond, body, end := g.newLabel(), g.newLabel(), g.newLabel()
		g.bind(cond)
		if err := g.genCond(st.Cond, body, end); err != nil {
			return err
		}
		g.bind(body)
		g.loops = append(g.loops, &loopCtx{breakL: end, continueL: cond})
		err := g.genBlock(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		g.emitGoto(cond)
		g.bind(end)
		return nil

	case *For:
		g.pushScope()
		defer g.popScope()
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		cond, body, post, end := g.newLabel(), g.newLabel(), g.newLabel(), g.newLabel()
		g.bind(cond)
		if st.Cond != nil {
			if err := g.genCond(st.Cond, body, end); err != nil {
				return err
			}
		}
		g.bind(body)
		g.loops = append(g.loops, &loopCtx{breakL: end, continueL: post})
		err := g.genBlock(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		g.bind(post)
		if st.Post != nil {
			if err := g.genStmt(st.Post); err != nil {
				return err
			}
		}
		g.emitGoto(cond)
		g.bind(end)
		return nil

	case *Return:
		want := g.decl.Ret
		if st.Value == nil {
			if want.K != TVoid {
				return g.c.errf(st.Line, "missing return value (want %s)", want)
			}
			g.emit(dex.Insn{Op: dex.OpReturnVoid})
			return nil
		}
		if want.K == TVoid {
			return g.c.errf(st.Line, "void function returns a value")
		}
		r, ty, owned, err := g.genExpr(st.Value)
		if err != nil {
			return err
		}
		if err := g.checkAssignable(want, ty, st.Line); err != nil {
			return err
		}
		g.emit(dex.Insn{Op: dex.OpReturn, A: r})
		if owned {
			g.free(r)
		}
		return nil

	case *Break:
		if len(g.loops) == 0 {
			return g.c.errf(st.Line, "break outside loop")
		}
		g.emitGoto(g.loops[len(g.loops)-1].breakL)
		return nil

	case *Continue:
		if len(g.loops) == 0 {
			return g.c.errf(st.Line, "continue outside loop")
		}
		g.emitGoto(g.loops[len(g.loops)-1].continueL)
		return nil

	case *ExprStmt:
		r, _, owned, err := g.genExpr(st.X)
		if err != nil {
			return err
		}
		if owned {
			g.free(r)
		}
		return nil

	case *Throw:
		r, ty, owned, err := g.genExpr(st.Value)
		if err != nil {
			return err
		}
		if ty.K != TInt {
			return g.c.errf(st.Line, "throw takes an int code, got %s", ty)
		}
		g.hasThrow = true
		g.emit(dex.Insn{Op: dex.OpThrow, A: r})
		if owned {
			g.free(r)
		}
		return nil
	}
	return g.c.errf(0, "unhandled statement %T", s)
}

func (g *fngen) checkAssignable(dst, src Type, line int) error {
	if dst.Equal(src) {
		return nil
	}
	if dst.IsRef() && src.K == TNull {
		return nil
	}
	// Upcast: src class derives from dst class.
	if dst.K == TClass && src.K == TClass {
		for ci := g.c.classes[src.Class]; ci != nil; ci = ci.super {
			if ci.decl.Name == dst.Class {
				return nil
			}
		}
	}
	return g.c.errf(line, "cannot assign %s to %s", src, dst)
}

func (g *fngen) genAssign(st *Assign) error {
	switch lhs := st.Lhs.(type) {
	case *Ident:
		if lv, ok := g.lookup(lhs.Name); ok {
			vr, vt, owned, err := g.genExpr(st.Rhs)
			if err != nil {
				return err
			}
			if err := g.checkAssignable(lv.ty, vt, st.Line); err != nil {
				return err
			}
			g.emit(dex.Insn{Op: dex.OpMove, A: lv.reg, B: vr})
			if owned {
				g.free(vr)
			}
			return nil
		}
		if gi, ok := g.c.globals[lhs.Name]; ok {
			vr, vt, owned, err := g.genExpr(st.Rhs)
			if err != nil {
				return err
			}
			if err := g.checkAssignable(gi.ty, vt, st.Line); err != nil {
				return err
			}
			g.emit(dex.Insn{Op: storeGlobalOp(gi.ty), A: vr, Imm: int64(gi.slot)})
			if owned {
				g.free(vr)
			}
			return nil
		}
		return g.c.errf(st.Line, "undefined variable %s", lhs.Name)

	case *Index:
		ar, at, aOwned, err := g.genExpr(lhs.Arr)
		if err != nil {
			return err
		}
		if at.K != TArray {
			return g.c.errf(st.Line, "indexing non-array %s", at)
		}
		ir, it, iOwned, err := g.genExpr(lhs.Idx)
		if err != nil {
			return err
		}
		if it.K != TInt {
			return g.c.errf(st.Line, "array index must be int, got %s", it)
		}
		vr, vt, vOwned, err := g.genExpr(st.Rhs)
		if err != nil {
			return err
		}
		if err := g.checkAssignable(*at.Elem, vt, st.Line); err != nil {
			return err
		}
		g.emit(dex.Insn{Op: astoreOp(*at.Elem), A: vr, B: ar, C: ir})
		if aOwned {
			g.free(ar)
		}
		if iOwned {
			g.free(ir)
		}
		if vOwned {
			g.free(vr)
		}
		return nil

	case *Field:
		rr, rtY, rOwned, err := g.genExpr(lhs.Recv)
		if err != nil {
			return err
		}
		if rtY.K != TClass {
			return g.c.errf(st.Line, "field access on non-object %s", rtY)
		}
		fi, ok := g.c.classes[rtY.Class].fields[lhs.Name]
		if !ok {
			return g.c.errf(st.Line, "class %s has no field %s", rtY.Class, lhs.Name)
		}
		vr, vt, vOwned, err := g.genExpr(st.Rhs)
		if err != nil {
			return err
		}
		if err := g.checkAssignable(fi.ty, vt, st.Line); err != nil {
			return err
		}
		g.emit(dex.Insn{Op: fstoreOp(fi.ty), A: vr, B: rr, Imm: int64(fi.slot)})
		if rOwned {
			g.free(rr)
		}
		if vOwned {
			g.free(vr)
		}
		return nil
	}
	return g.c.errf(st.Line, "invalid assignment target")
}

func storeGlobalOp(t Type) dex.Op {
	switch kindOf(t) {
	case dex.KindFloat:
		return dex.OpSStoreFloat
	case dex.KindRef:
		return dex.OpSStoreRef
	default:
		return dex.OpSStoreInt
	}
}

func loadGlobalOp(t Type) dex.Op {
	switch kindOf(t) {
	case dex.KindFloat:
		return dex.OpSLoadFloat
	case dex.KindRef:
		return dex.OpSLoadRef
	default:
		return dex.OpSLoadInt
	}
}

func astoreOp(t Type) dex.Op {
	switch kindOf(t) {
	case dex.KindFloat:
		return dex.OpAStoreFloat
	case dex.KindRef:
		return dex.OpAStoreRef
	default:
		return dex.OpAStoreInt
	}
}

func aloadOp(t Type) dex.Op {
	switch kindOf(t) {
	case dex.KindFloat:
		return dex.OpALoadFloat
	case dex.KindRef:
		return dex.OpALoadRef
	default:
		return dex.OpALoadInt
	}
}

func fstoreOp(t Type) dex.Op {
	switch kindOf(t) {
	case dex.KindFloat:
		return dex.OpFStoreFloat
	case dex.KindRef:
		return dex.OpFStoreRef
	default:
		return dex.OpFStoreInt
	}
}

func floadOp(t Type) dex.Op {
	switch kindOf(t) {
	case dex.KindFloat:
		return dex.OpFLoadFloat
	case dex.KindRef:
		return dex.OpFLoadRef
	default:
		return dex.OpFLoadInt
	}
}
