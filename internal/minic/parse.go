package minic

import "fmt"

type parser struct {
	file string
	toks []token
	pos  int
}

// Parse parses one minic source file.
func Parse(file, src string) (*File, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	f := &File{Name: file}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokKeyword, "global"):
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		case p.at(tokKeyword, "class"):
			c, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			f.Classes = append(f.Classes, c)
		case p.at(tokKeyword, "func") || p.at(tokPunct, "@"):
			fn, err := p.parseFunc("")
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, p.errf("expected global, class, or func, got %s", p.peek())
		}
	}
	return f, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) at(k tokKind, text string) bool {
	t := p.peek()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if !p.at(k, text) {
		return token{}, p.errf("expected %q, got %s", text, p.peek())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &Error{File: p.file, Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// parseType parses int/float/bool/void/ClassName with any number of [].
func (p *parser) parseType() (Type, error) {
	var base Type
	t := p.next()
	switch {
	case t.kind == tokKeyword && t.text == "int":
		base = IntType
	case t.kind == tokKeyword && t.text == "float":
		base = FloatType
	case t.kind == tokKeyword && t.text == "bool":
		base = BoolType
	case t.kind == tokKeyword && t.text == "void":
		base = VoidType
	case t.kind == tokIdent:
		base = ClassType(t.text)
	default:
		return Type{}, p.errf("expected type, got %s", t)
	}
	for p.at(tokPunct, "[") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "]" {
		p.next()
		p.next()
		base = ArrayOf(base)
	}
	return base, nil
}

func (p *parser) parseGlobal() (*GlobalDecl, error) {
	line := p.peek().line
	p.next() // global
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, p.errf("expected global name")
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &GlobalDecl{Name: name.text, Type: ty, Line: line}, nil
}

func (p *parser) parseClass() (*ClassDecl, error) {
	line := p.peek().line
	p.next() // class
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, p.errf("expected class name")
	}
	c := &ClassDecl{Name: name.text, Line: line}
	if p.accept(tokKeyword, "extends") {
		super, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("expected superclass name")
		}
		c.Super = super.text
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, "}") {
		if p.at(tokKeyword, "func") || p.at(tokPunct, "@") {
			m, err := p.parseFunc(c.Name)
			if err != nil {
				return nil, err
			}
			c.Methods = append(c.Methods, m)
			continue
		}
		// Field: type name ;
		fline := p.peek().line
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("expected field name")
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		c.Fields = append(c.Fields, &FieldDecl{Name: fname.text, Type: ty, Line: fline})
	}
	return c, nil
}

func (p *parser) parseFunc(class string) (*FuncDecl, error) {
	uncompilable := false
	for p.accept(tokPunct, "@") {
		ann, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("expected annotation name after @")
		}
		switch ann.text {
		case "uncompilable":
			uncompilable = true
		default:
			return nil, p.errf("unknown annotation @%s", ann.text)
		}
	}
	line := p.peek().line
	if _, err := p.expect(tokKeyword, "func"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, p.errf("expected function name")
	}
	fn := &FuncDecl{Name: name.text, Class: class, Line: line, Uncompilable: uncompilable, Ret: VoidType}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, ")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pname, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("expected parameter name")
		}
		fn.Params = append(fn.Params, Param{Name: pname.text, Type: ty})
	}
	// Optional return type before the body.
	if !p.at(tokPunct, "{") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn.Ret = ty
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(tokPunct, "}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// typeAhead reports whether the tokens at pos start a type followed by an
// identifier (i.e. a variable declaration).
func (p *parser) typeAhead() bool {
	t := p.peek()
	if t.kind == tokKeyword && (t.text == "int" || t.text == "float" || t.text == "bool") {
		return true
	}
	if t.kind != tokIdent {
		return false
	}
	// ClassName ident | ClassName[] ...
	i := p.pos + 1
	for i+1 < len(p.toks) && p.toks[i].kind == tokPunct && p.toks[i].text == "[" &&
		p.toks[i+1].kind == tokPunct && p.toks[i+1].text == "]" {
		i += 2
	}
	return i < len(p.toks) && p.toks[i].kind == tokIdent
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "{":
		return p.parseBlock()

	case t.kind == tokKeyword && t.text == "if":
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: then}
		if p.accept(tokKeyword, "else") {
			if p.at(tokKeyword, "if") {
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				st.Else = &Block{Stmts: []Stmt{inner}}
			} else {
				els, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil

	case t.kind == tokKeyword && t.text == "while":
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil

	case t.kind == tokKeyword && t.text == "for":
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		st := &For{}
		if !p.at(tokPunct, ";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ")") {
			post, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil

	case t.kind == tokKeyword && t.text == "return":
		p.next()
		st := &Return{Line: t.line}
		if !p.at(tokPunct, ";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil

	case t.kind == tokKeyword && t.text == "throw":
		p.next()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Throw{Value: v, Line: t.line}, nil

	case t.kind == tokKeyword && t.text == "break":
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Break{Line: t.line}, nil

	case t.kind == tokKeyword && t.text == "continue":
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Continue{Line: t.line}, nil

	default:
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil
	}
}

// parseSimpleStmt parses a declaration, assignment, or expression statement
// (no trailing semicolon).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	if p.typeAhead() {
		line := p.peek().line
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("expected variable name")
		}
		vd := &VarDecl{Name: name.text, Type: ty, Line: line}
		if p.accept(tokPunct, "=") {
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		return vd, nil
	}
	line := p.peek().line
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "=") {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Lhs: lhs, Rhs: rhs, Line: line}, nil
	}
	return &ExprStmt{X: lhs}, nil
}

// Precedence climbing. Higher binds tighter.
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"|": 4, "^": 5, "&": 6,
	"<<": 7, ">>": 7,
	"+": 8, "-": 8,
	"*": 9, "/": 9, "%": 9,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{t.line}, Op: t.text, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{t.line}, Op: t.text, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokPunct && t.text == "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{t.line}, Arr: x, Idx: idx}
		case t.kind == tokPunct && t.text == ".":
			p.next()
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, p.errf("expected member name after '.'")
			}
			if p.at(tokPunct, "(") {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				x = &MethodCall{exprBase: exprBase{t.line}, Recv: x, Name: name.text, Args: args}
			} else {
				x = &Field{exprBase: exprBase{t.line}, Recv: x, Name: name.text}
			}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.accept(tokPunct, ")") {
		if len(args) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokInt:
		p.next()
		return &IntLit{exprBase{t.line}, t.ival}, nil
	case t.kind == tokFloat:
		p.next()
		return &FloatLit{exprBase{t.line}, t.fval}, nil
	case t.kind == tokKeyword && t.text == "true":
		p.next()
		return &BoolLit{exprBase{t.line}, true}, nil
	case t.kind == tokKeyword && t.text == "false":
		p.next()
		return &BoolLit{exprBase{t.line}, false}, nil
	case t.kind == tokKeyword && t.text == "null":
		p.next()
		return &NullLit{exprBase{t.line}}, nil
	case t.kind == tokKeyword && t.text == "this":
		p.next()
		return &This{exprBase{t.line}}, nil

	case t.kind == tokKeyword && t.text == "new":
		p.next()
		// new C() | new T[expr] ([] suffixes for nested array types)
		var base Type
		tt := p.next()
		switch {
		case tt.kind == tokKeyword && tt.text == "int":
			base = IntType
		case tt.kind == tokKeyword && tt.text == "float":
			base = FloatType
		case tt.kind == tokKeyword && tt.text == "bool":
			base = BoolType
		case tt.kind == tokIdent:
			base = ClassType(tt.text)
		default:
			return nil, p.errf("expected type after new")
		}
		if p.at(tokPunct, "(") {
			if base.K != TClass {
				return nil, p.errf("cannot construct %s", base)
			}
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return &NewObject{exprBase{t.line}, base.Class}, nil
		}
		if _, err := p.expect(tokPunct, "["); err != nil {
			return nil, p.errf("expected ( or [ after new %s", base)
		}
		size, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		// Trailing [] pairs make the element type an array: new float[n][]
		// allocates a ref array of n float[] slots.
		for p.at(tokPunct, "[") && p.toks[p.pos+1].text == "]" {
			p.next()
			p.next()
			base = ArrayOf(base)
		}
		return &NewArray{exprBase{t.line}, base, size}, nil

	case t.kind == tokIdent:
		p.next()
		if p.at(tokPunct, "(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{exprBase{t.line}, t.text, args}, nil
		}
		return &Ident{exprBase{t.line}, t.text}, nil

	case t.kind == tokPunct && t.text == "(":
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %s", t)
}
