package minic

import "testing"

func lexOK(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex("t", src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexNumbers(t *testing.T) {
	toks := lexOK(t, "0 42 3.5 2.0e3 1e-2 7.25E+1")
	wantKinds := []tokKind{tokInt, tokInt, tokFloat, tokFloat, tokFloat, tokFloat, tokEOF}
	if len(toks) != len(wantKinds) {
		t.Fatalf("%d tokens", len(toks))
	}
	for i, k := range wantKinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind %d, want %d (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
	if toks[3].fval != 2000 {
		t.Errorf("2.0e3 = %v", toks[3].fval)
	}
	if toks[4].fval != 0.01 {
		t.Errorf("1e-2 = %v", toks[4].fval)
	}
}

func TestLexOperatorsLongestMatch(t *testing.T) {
	toks := lexOK(t, "<= << < == = && & ! !=")
	want := []string{"<=", "<<", "<", "==", "=", "&&", "&", "!", "!="}
	for i, w := range want {
		if toks[i].text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexOK(t, "a\n  bb\n")
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("a at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("bb at %d:%d", toks[1].line, toks[1].col)
	}
}

func TestLexCommentsDontEatTokens(t *testing.T) {
	toks := lexOK(t, "x // comment\ny /* mid */ z")
	var names []string
	for _, tk := range toks {
		if tk.kind == tokIdent {
			names = append(names, tk.text)
		}
	}
	if len(names) != 3 || names[0] != "x" || names[1] != "y" || names[2] != "z" {
		t.Errorf("idents = %v", names)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("t", "a $ b"); err == nil {
		t.Error("accepted $")
	}
	if _, err := lex("t", "/* never closed"); err == nil {
		t.Error("accepted unterminated comment")
	}
}

func TestThreeDimensionalArrays(t *testing.T) {
	prog, err := CompileSource("t", `
func main() int {
	float[][][] cube = new float[2][][];
	for (int i = 0; i < 2; i = i + 1) {
		cube[i] = new float[3][];
		for (int j = 0; j < 3; j = j + 1) {
			cube[i][j] = new float[4];
			cube[i][j][2] = itof(i * 10 + j);
		}
	}
	return ftoi(cube[1][2][2]);
}`)
	if err != nil {
		t.Fatalf("3D arrays: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}
