package minic

import (
	"fmt"

	"replayopt/internal/dex"
)

// Compile typechecks file and lowers it to a validated dex program.
func Compile(file *File) (*dex.Program, error) {
	c := &compiler{
		file:    file,
		prog:    &dex.Program{Name: file.Name, Natives: dex.StdNatives()},
		classes: make(map[string]*classInfo),
		funcs:   make(map[string]*funcInfo),
		globals: make(map[string]globalInfo),
		natives: dex.StdNativeIndex(),
	}
	if err := c.collect(); err != nil {
		return nil, err
	}
	if err := c.compileBodies(); err != nil {
		return nil, err
	}
	c.prog.BuildIndex()
	if err := c.prog.Validate(); err != nil {
		return nil, fmt.Errorf("minic: internal codegen error: %w", err)
	}
	return c.prog, nil
}

// CompileSource parses and compiles src in one step.
func CompileSource(name, src string) (*dex.Program, error) {
	f, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	f.Name = name
	return Compile(f)
}

type fieldInfo struct {
	slot int
	ty   Type
}

type classInfo struct {
	id      dex.ClassID
	decl    *ClassDecl
	super   *classInfo
	fields  map[string]fieldInfo
	methods map[string]*funcInfo // by simple name, including inherited
}

type funcInfo struct {
	id    dex.MethodID
	decl  *FuncDecl
	class string
	vslot int
}

type globalInfo struct {
	slot int
	ty   Type
}

type compiler struct {
	file    *File
	prog    *dex.Program
	classes map[string]*classInfo
	funcs   map[string]*funcInfo
	globals map[string]globalInfo
	natives map[string]dex.NativeID
}

func (c *compiler) errf(line int, format string, args ...any) error {
	return &Error{File: c.file.Name, Line: line, Col: 1, Msg: fmt.Sprintf(format, args...)}
}

// checkType verifies user types reference declared classes.
func (c *compiler) checkType(t Type, line int) error {
	switch t.K {
	case TClass:
		if _, ok := c.classes[t.Class]; !ok {
			return c.errf(line, "unknown class %s", t.Class)
		}
	case TArray:
		return c.checkType(*t.Elem, line)
	}
	return nil
}

func (c *compiler) collect() error {
	// Pass 1: class shells, in declaration order with supers resolved
	// topologically.
	declared := make(map[string]*ClassDecl)
	for _, cd := range c.file.Classes {
		if _, dup := declared[cd.Name]; dup {
			return c.errf(cd.Line, "duplicate class %s", cd.Name)
		}
		declared[cd.Name] = cd
	}
	var build func(name string, seen map[string]bool) (*classInfo, error)
	build = func(name string, seen map[string]bool) (*classInfo, error) {
		if ci, ok := c.classes[name]; ok {
			return ci, nil
		}
		cd, ok := declared[name]
		if !ok {
			return nil, c.errf(1, "unknown class %s", name)
		}
		if seen[name] {
			return nil, c.errf(cd.Line, "inheritance cycle through %s", name)
		}
		seen[name] = true
		ci := &classInfo{decl: cd, fields: make(map[string]fieldInfo), methods: make(map[string]*funcInfo)}
		cls := &dex.Class{Name: cd.Name, Super: dex.NoClass}
		if cd.Super != "" {
			sup, err := build(cd.Super, seen)
			if err != nil {
				return nil, err
			}
			ci.super = sup
			cls.Super = sup.id
			// Inherit field layout and vtable.
			cls.Fields = append(cls.Fields, c.prog.Classes[sup.id].Fields...)
			cls.VTable = append(cls.VTable, c.prog.Classes[sup.id].VTable...)
			for k, v := range sup.fields {
				ci.fields[k] = v
			}
			for k, v := range sup.methods {
				ci.methods[k] = v
			}
		}
		for _, fd := range cd.Fields {
			if _, dup := ci.fields[fd.Name]; dup {
				return nil, c.errf(fd.Line, "duplicate field %s.%s", cd.Name, fd.Name)
			}
			ci.fields[fd.Name] = fieldInfo{slot: len(cls.Fields), ty: fd.Type}
			cls.Fields = append(cls.Fields, dex.Field{Name: fd.Name, Kind: kindOf(fd.Type)})
		}
		ci.id = dex.ClassID(len(c.prog.Classes))
		c.prog.Classes = append(c.prog.Classes, cls)
		c.classes[cd.Name] = ci
		return ci, nil
	}
	for _, cd := range c.file.Classes {
		if _, err := build(cd.Name, map[string]bool{}); err != nil {
			return err
		}
	}

	// Pass 2: verify field/param/ret types now that all classes exist.
	for _, cd := range c.file.Classes {
		for _, fd := range cd.Fields {
			if err := c.checkType(fd.Type, fd.Line); err != nil {
				return err
			}
		}
	}

	// Pass 3: method and function shells. Methods claim vtable slots.
	addMethodShell := func(fd *FuncDecl, ci *classInfo) error {
		m := &dex.Method{
			Name:         fd.QName(),
			Class:        ci.id,
			Virtual:      true,
			NumArgs:      len(fd.Params) + 1,
			Ret:          kindOf(fd.Ret),
			Uncompilable: fd.Uncompilable,
		}
		m.Params = append(m.Params, dex.KindRef) // this
		for _, p := range fd.Params {
			if err := c.checkType(p.Type, fd.Line); err != nil {
				return err
			}
			m.Params = append(m.Params, kindOf(p.Type))
		}
		if err := c.checkType(fd.Ret, fd.Line); err != nil {
			return err
		}
		id := dex.MethodID(len(c.prog.Methods))
		c.prog.Methods = append(c.prog.Methods, m)
		cls := c.prog.Classes[ci.id]

		if prev, overriding := ci.methods[fd.Name]; overriding {
			// Signature must match the overridden method.
			pd := prev.decl
			if len(pd.Params) != len(fd.Params) || !pd.Ret.Equal(fd.Ret) {
				return c.errf(fd.Line, "override %s changes signature", fd.QName())
			}
			for i := range pd.Params {
				if !pd.Params[i].Type.Equal(fd.Params[i].Type) {
					return c.errf(fd.Line, "override %s changes parameter %d type", fd.QName(), i)
				}
			}
			m.VSlot = prev.vslot
			cls.VTable[prev.vslot] = id
		} else {
			m.VSlot = len(cls.VTable)
			cls.VTable = append(cls.VTable, id)
		}
		fi := &funcInfo{id: id, decl: fd, class: ci.decl.Name, vslot: m.VSlot}
		ci.methods[fd.Name] = fi
		cls.Methods = append(cls.Methods, id)
		return nil
	}

	// Build in the same topological order as pass 1 so supers' vtables are
	// complete before subclasses copy them. classes were appended in topo
	// order, so iterate prog.Classes.
	for _, cls := range c.prog.Classes {
		ci := c.classes[cls.Name]
		// Refresh inherited vtable/method views (supers may have appended
		// methods after the shell copy in pass 1).
		if ci.super != nil {
			supCls := c.prog.Classes[ci.super.id]
			cls.VTable = append([]dex.MethodID(nil), supCls.VTable...)
			for k, v := range ci.super.methods {
				ci.methods[k] = v
			}
		}
		seen := map[string]bool{}
		for _, md := range ci.decl.Methods {
			if seen[md.Name] {
				return c.errf(md.Line, "duplicate method %s", md.QName())
			}
			seen[md.Name] = true
			if err := addMethodShell(md, ci); err != nil {
				return err
			}
		}
	}

	// Free functions.
	for _, fd := range c.file.Funcs {
		if _, dup := c.funcs[fd.Name]; dup {
			return c.errf(fd.Line, "duplicate function %s", fd.Name)
		}
		if isBuiltinName(fd.Name) {
			return c.errf(fd.Line, "function %s shadows a builtin", fd.Name)
		}
		m := &dex.Method{
			Name:         fd.Name,
			Class:        dex.NoClass,
			NumArgs:      len(fd.Params),
			Ret:          kindOf(fd.Ret),
			Uncompilable: fd.Uncompilable,
		}
		for _, p := range fd.Params {
			if err := c.checkType(p.Type, fd.Line); err != nil {
				return err
			}
			m.Params = append(m.Params, kindOf(p.Type))
		}
		if err := c.checkType(fd.Ret, fd.Line); err != nil {
			return err
		}
		id := dex.MethodID(len(c.prog.Methods))
		c.prog.Methods = append(c.prog.Methods, m)
		c.funcs[fd.Name] = &funcInfo{id: id, decl: fd}
	}

	// Globals.
	for _, g := range c.file.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return c.errf(g.Line, "duplicate global %s", g.Name)
		}
		if err := c.checkType(g.Type, g.Line); err != nil {
			return err
		}
		c.globals[g.Name] = globalInfo{slot: len(c.prog.Globals), ty: g.Type}
		c.prog.Globals = append(c.prog.Globals, dex.Global{Name: g.Name, Kind: kindOf(g.Type)})
	}

	mainFn, ok := c.funcs["main"]
	if !ok {
		return c.errf(1, "program has no main function")
	}
	if len(mainFn.decl.Params) != 0 {
		return c.errf(mainFn.decl.Line, "main must take no parameters")
	}
	c.prog.Entry = mainFn.id
	return nil
}

func kindOf(t Type) dex.Kind {
	switch t.K {
	case TVoid:
		return dex.KindVoid
	case TInt, TBool:
		return dex.KindInt
	case TFloat:
		return dex.KindFloat
	default:
		return dex.KindRef
	}
}

func (c *compiler) compileBodies() error {
	for _, cd := range c.file.Classes {
		ci := c.classes[cd.Name]
		for _, md := range cd.Methods {
			if err := c.compileFunc(md, c.methodInfoFor(ci, md)); err != nil {
				return err
			}
		}
	}
	for _, fd := range c.file.Funcs {
		if err := c.compileFunc(fd, c.funcs[fd.Name]); err != nil {
			return err
		}
	}
	return nil
}

// methodInfoFor finds the funcInfo whose decl is md (overrides share names
// with inherited entries, so search the class's declared methods).
func (c *compiler) methodInfoFor(ci *classInfo, md *FuncDecl) *funcInfo {
	fi := ci.methods[md.Name]
	if fi != nil && fi.decl == md {
		return fi
	}
	// The map may point at an override in a subclass scenario; scan methods
	// of the dex class.
	for _, mid := range c.prog.Classes[ci.id].Methods {
		if c.prog.Methods[mid].Name == md.QName() {
			return &funcInfo{id: mid, decl: md, class: ci.decl.Name, vslot: c.prog.Methods[mid].VSlot}
		}
	}
	panic("minic: method shell missing for " + md.QName())
}
