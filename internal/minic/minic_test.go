package minic

import (
	"strings"
	"testing"

	"replayopt/internal/interp"
	"replayopt/internal/rt"
)

// runInt compiles src and returns main's integer result.
func runInt(t *testing.T, src string) int64 {
	t.Helper()
	prog, err := CompileSource("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	proc := rt.NewProcess(prog, rt.Config{})
	e := interp.NewEnv(proc)
	e.MaxCycles = 200_000_000
	v, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return int64(v)
}

func runFloat(t *testing.T, src string) float64 {
	t.Helper()
	prog, err := CompileSource("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e := interp.NewEnv(rt.NewProcess(prog, rt.Config{}))
	e.MaxCycles = 200_000_000
	v, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rt.U2F(v)
}

func compileErr(t *testing.T, src string) string {
	t.Helper()
	_, err := CompileSource("test", src)
	if err == nil {
		t.Fatal("compile unexpectedly succeeded")
	}
	return err.Error()
}

func TestArithmeticAndPrecedence(t *testing.T) {
	got := runInt(t, `func main() int { return 2 + 3 * 4 - 10 / 2; }`)
	if got != 9 {
		t.Errorf("2+3*4-10/2 = %d, want 9", got)
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	got := runInt(t, `func main() int { return ((5 & 3) | (1 << 4)) ^ 2; }`)
	if got != ((5&3)|(1<<4))^2 {
		t.Errorf("bitops = %d", got)
	}
}

func TestWhileLoopSum(t *testing.T) {
	got := runInt(t, `
func main() int {
	int i = 0;
	int sum = 0;
	while (i < 100) { sum = sum + i; i = i + 1; }
	return sum;
}`)
	if got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
}

func TestForLoopWithBreakContinue(t *testing.T) {
	got := runInt(t, `
func main() int {
	int sum = 0;
	for (int i = 0; i < 100; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i > 50) { break; }
		sum = sum + i;
	}
	return sum;
}`)
	want := int64(0)
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			continue
		}
		if i > 50 {
			break
		}
		want += int64(i)
	}
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// g records whether side-effecting was called; && must skip it.
	got := runInt(t, `
global int calls;
func bump() bool { calls = calls + 1; return true; }
func main() int {
	if (false && bump()) { return 100; }
	if (true || bump()) { return calls; }
	return 99;
}`)
	if got != 0 {
		t.Errorf("short-circuit leaked %d side calls", got)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	got := runInt(t, `
func fib(int n) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() int { return fib(15); }`)
	if got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestArraysAndLen(t *testing.T) {
	got := runInt(t, `
func main() int {
	int[] a = new int[10];
	for (int i = 0; i < len(a); i = i + 1) { a[i] = i * i; }
	int sum = 0;
	for (int i = 0; i < len(a); i = i + 1) { sum = sum + a[i]; }
	return sum;
}`)
	if got != 285 {
		t.Errorf("sum of squares = %d, want 285", got)
	}
}

func TestJaggedArrays(t *testing.T) {
	got := runFloat(t, `
func main() float {
	float[][] m = new float[3][];
	for (int i = 0; i < 3; i = i + 1) {
		m[i] = new float[4];
		for (int j = 0; j < 4; j = j + 1) { m[i][j] = itof(i * 4 + j); }
	}
	float total = 0.0;
	for (int i = 0; i < 3; i = i + 1) {
		for (int j = 0; j < 4; j = j + 1) { total = total + m[i][j]; }
	}
	return total;
}`)
	if got != 66 {
		t.Errorf("matrix sum = %v, want 66", got)
	}
}

func TestFloatsAndConversions(t *testing.T) {
	got := runFloat(t, `
func main() float {
	float x = 2.5;
	int n = ftoi(x * 2.0);
	return itof(n) / 4.0;
}`)
	if got != 1.25 {
		t.Errorf("got %v, want 1.25", got)
	}
}

func TestClassesFieldsAndMethods(t *testing.T) {
	got := runInt(t, `
class Counter {
	int n;
	func bump(int by) { this.n = this.n + by; }
	func value() int { return this.n; }
}
func main() int {
	Counter c = new Counter();
	c.bump(3);
	c.bump(4);
	return c.value();
}`)
	if got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
}

func TestInheritanceAndVirtualDispatch(t *testing.T) {
	got := runInt(t, `
class Shape {
	int side;
	func area() int { return 0; }
	func describe() int { return this.area() * 10; }
}
class Square extends Shape {
	func area() int { return this.side * this.side; }
}
func main() int {
	Shape s = new Square();
	s.side = 5;
	return s.describe();
}`)
	if got != 250 {
		t.Errorf("virtual dispatch = %d, want 250 (Square.area through Shape)", got)
	}
}

func TestInheritedFieldsKeepSlots(t *testing.T) {
	got := runInt(t, `
class A { int x; }
class B extends A { int y; }
func main() int {
	B b = new B();
	b.x = 11;
	b.y = 31;
	A a = b;
	return a.x + b.y;
}`)
	if got != 42 {
		t.Errorf("field slots = %d, want 42", got)
	}
}

func TestGlobalsAcrossFunctions(t *testing.T) {
	got := runInt(t, `
global int total;
global float scale;
func add(int x) { total = total + x; }
func main() int {
	scale = 2.0;
	add(10);
	add(20);
	return total * ftoi(scale);
}`)
	if got != 60 {
		t.Errorf("globals = %d, want 60", got)
	}
}

func TestBuiltinsMathAndIO(t *testing.T) {
	got := runFloat(t, `
func main() float {
	print_int(42);
	return sqrt(16.0) + pow(2.0, 3.0) + absf(-1.5) + itof(maxi(2, 7));
}`)
	if got != 4+8+1.5+7 {
		t.Errorf("builtins = %v", got)
	}
}

func TestNullComparison(t *testing.T) {
	got := runInt(t, `
class Node { Node next; int v; }
func main() int {
	Node head = new Node();
	head.v = 1;
	head.next = new Node();
	head.next.v = 2;
	int sum = 0;
	Node cur = head;
	while (cur != null) { sum = sum + cur.v; cur = cur.next; }
	return sum;
}`)
	if got != 3 {
		t.Errorf("linked list sum = %d, want 3", got)
	}
}

func TestBoolValuesAndNot(t *testing.T) {
	got := runInt(t, `
func main() int {
	bool a = 3 < 5;
	bool b = !a;
	if (a && !b) { return 1; }
	return 0;
}`)
	if got != 1 {
		t.Errorf("bool logic = %d, want 1", got)
	}
}

func TestThrowMarksMethod(t *testing.T) {
	prog, err := CompileSource("test", `
func risky(int x) int {
	if (x < 0) { throw 7; }
	return x;
}
func main() int { return risky(5); }`)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := prog.MethodByName("risky")
	if !ok || !prog.Method(id).HasThrow {
		t.Error("risky not marked HasThrow")
	}
}

func TestUncompilableAnnotation(t *testing.T) {
	prog, err := CompileSource("test", `
@uncompilable
func weird() int { return 1; }
func main() int { return weird(); }`)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := prog.MethodByName("weird")
	if !prog.Method(id).Uncompilable {
		t.Error("@uncompilable not applied")
	}
}

func TestErrorsAreDiagnosed(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"type mismatch", `func main() int { int x = 1.5; return x; }`, "cannot assign"},
		{"mixed arith", `func main() int { return 1 + 2.0; }`, "matching numeric"},
		{"undefined var", `func main() int { return y; }`, "undefined variable"},
		{"undefined func", `func main() int { return nope(); }`, "undefined function"},
		{"unknown class", `func main() int { Foo f = null; return 0; }`, "unknown class"},
		{"no main", `func helper() int { return 1; }`, "no main"},
		{"dup function", `func f() int { return 1; } func f() int { return 2; } func main() int { return 0; }`, "duplicate function"},
		{"bad condition", `func main() int { if (3) { return 1; } return 0; }`, "must be bool"},
		{"wrong arity", `func f(int a) int { return a; } func main() int { return f(); }`, "takes 1 arguments"},
		{"override sig", `class A { func f() int { return 1; } } class B extends A { func f(int x) int { return x; } } func main() int { return 0; }`, "changes signature"},
		{"builtin shadow", `func sqrt(float x) float { return x; } func main() int { return 0; }`, "shadows a builtin"},
		{"inherit cycle", `class A extends B { } class B extends A { } func main() int { return 0; }`, "cycle"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msg := compileErr(t, c.src)
			if !strings.Contains(msg, c.want) {
				t.Errorf("error %q does not mention %q", msg, c.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func main() int { return 1 }`,      // missing semicolon
		`func main() int { return (1; }`,    // unbalanced paren
		`func main() int { int 3x = 1; }`,   // bad ident
		`class { }`,                         // missing name
		`func main() int { /* unterminated`, // comment
		`func main() int { return 1 $ 2; }`, // bad char
	}
	for _, src := range cases {
		if _, err := CompileSource("test", src); err == nil {
			t.Errorf("accepted malformed source %q", src)
		}
	}
}

func TestComments(t *testing.T) {
	got := runInt(t, `
// line comment
/* block
   comment */
func main() int { return 5; /* trailing */ }`)
	if got != 5 {
		t.Errorf("got %d", got)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
func classify(int x) int {
	if (x < 0) { return 0; }
	else if (x == 0) { return 1; }
	else if (x < 10) { return 2; }
	else { return 3; }
}
func main() int { return classify(-5) + classify(0)*10 + classify(5)*100 + classify(50)*1000; }`
	if got := runInt(t, src); got != 0+10+200+3000 {
		t.Errorf("else-if chain = %d", got)
	}
}

func TestDeepExpressionRegisterRecycling(t *testing.T) {
	// Deeply nested expression exercises temp alloc/free.
	got := runInt(t, `
func main() int {
	return ((1+2)*(3+4) + (5+6)*(7+8)) * ((1+1)*(2+2) - (3*2));
}`)
	want := int64(((1+2)*(3+4) + (5+6)*(7+8)) * ((1+1)*(2+2) - (3 * 2)))
	if got != want {
		t.Errorf("nested expr = %d, want %d", got, want)
	}
}

func TestForWithoutCondition(t *testing.T) {
	got := runInt(t, `
func main() int {
	int n = 0;
	for (;;) {
		n = n + 1;
		if (n >= 10) { break; }
	}
	return n;
}`)
	if got != 10 {
		t.Errorf("infinite-for with break = %d", got)
	}
}

func TestNestedBreakContinueTargets(t *testing.T) {
	got := runInt(t, `
func main() int {
	int hits = 0;
	for (int i = 0; i < 6; i = i + 1) {
		for (int j = 0; j < 6; j = j + 1) {
			if (j == 3) { continue; }
			if (j == 5) { break; }
			hits = hits + 1;
		}
	}
	return hits;
}`)
	if got != 6*4 {
		t.Errorf("nested loop control = %d, want 24", got)
	}
}

func TestMethodCallOnThisImplicitChain(t *testing.T) {
	got := runInt(t, `
class A {
	int v;
	func bump() int { this.v = this.v + 1; return this.v; }
	func twice() int { return this.bump() + this.bump(); }
}
class B extends A {
	func bump() int { this.v = this.v + 10; return this.v; }
}
func main() int {
	A b = new B();
	return b.twice();
}`)
	if got != 10+20 {
		t.Errorf("this-dispatch through override = %d, want 30", got)
	}
}

func TestDeepInheritanceChain(t *testing.T) {
	got := runInt(t, `
class L0 { func tag() int { return 0; } func id() int { return this.tag() * 10; } }
class L1 extends L0 { func tag() int { return 1; } }
class L2 extends L1 { func tag() int { return 2; } }
class L3 extends L2 { func tag() int { return 3; } }
func main() int {
	L0[] xs = new L0[4];
	xs[0] = new L0(); xs[1] = new L1(); xs[2] = new L2(); xs[3] = new L3();
	int s = 0;
	for (int i = 0; i < 4; i = i + 1) { L0 o = xs[i]; s = s * 100 + o.id() + o.tag(); }
	return s;
}`)
	want := int64(0)
	for _, tag := range []int64{0, 1, 2, 3} {
		want = want*100 + tag*10 + tag
	}
	if got != want {
		t.Errorf("deep hierarchy = %d, want %d", got, want)
	}
}
