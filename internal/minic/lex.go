// Package minic implements the small Java-like language the evaluation
// applications are written in, compiled to dex bytecode. It plays the role
// of javac+d8 in the paper's toolchain (§2): the system under study never
// sees source, only bytecode — the §4 evaluation applications (Table 1's
// analogues in internal/apps) are all written in it.
//
// The language has int/float/bool scalars, jagged arrays, classes with
// single inheritance and virtual methods, global variables, and a builtin
// library that lowers to the standard native table (dex.StdNatives).
package minic

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct   // operators and delimiters
	tokKeyword // reserved words
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"class": true, "extends": true, "func": true, "global": true,
	"int": true, "float": true, "bool": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true, "throw": true,
	"new": true, "true": true, "false": true, "null": true, "this": true,
}

// Error is a compile error with position info.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

type lexer struct {
	file string
	src  []rune
	pos  int
	line int
	col  int
	toks []token
}

func lex(file, src string) ([]token, error) {
	l := &lexer{file: file, src: []rune(src), line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{File: l.file, Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peekRune()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekRune() != '\n' {
				l.advance()
			}
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekRune() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-rune punctuation, longest first.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ",", ";", ".", "@",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	start := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		start.kind = tokEOF
		return start, nil
	}
	r := l.peekRune()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var sb strings.Builder
		for l.pos < len(l.src) && (unicode.IsLetter(l.peekRune()) || unicode.IsDigit(l.peekRune()) || l.peekRune() == '_') {
			sb.WriteRune(l.advance())
		}
		start.text = sb.String()
		if keywords[start.text] {
			start.kind = tokKeyword
		} else {
			start.kind = tokIdent
		}
		return start, nil

	case unicode.IsDigit(r):
		var sb strings.Builder
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peekRune()
			if unicode.IsDigit(c) {
				sb.WriteRune(l.advance())
			} else if c == '.' && !isFloat && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1]) {
				isFloat = true
				sb.WriteRune(l.advance())
			} else if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) &&
				(unicode.IsDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
				isFloat = true
				sb.WriteRune(l.advance())
				if l.peekRune() == '-' || l.peekRune() == '+' {
					sb.WriteRune(l.advance())
				}
			} else {
				break
			}
		}
		start.text = sb.String()
		if isFloat {
			start.kind = tokFloat
			if _, err := fmt.Sscanf(start.text, "%g", &start.fval); err != nil {
				return token{}, l.errf("bad float literal %q", start.text)
			}
		} else {
			start.kind = tokInt
			if _, err := fmt.Sscanf(start.text, "%d", &start.ival); err != nil {
				return token{}, l.errf("bad int literal %q", start.text)
			}
		}
		return start, nil

	default:
		rest := string(l.src[l.pos:])
		for _, p := range puncts {
			if strings.HasPrefix(rest, p) {
				for range p {
					l.advance()
				}
				start.kind = tokPunct
				start.text = p
				return start, nil
			}
		}
		return token{}, l.errf("unexpected character %q", r)
	}
}
