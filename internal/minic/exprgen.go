package minic

import "replayopt/internal/dex"

// genExpr evaluates e into a register. owned reports whether the register is
// a temporary the caller must free.
func (g *fngen) genExpr(e Expr) (reg int, ty Type, owned bool, err error) {
	switch x := e.(type) {
	case *IntLit:
		r := g.alloc()
		g.emit(dex.Insn{Op: dex.OpConstInt, A: r, Imm: x.Value})
		return r, IntType, true, nil

	case *FloatLit:
		r := g.alloc()
		g.emit(dex.Insn{Op: dex.OpConstFloat, A: r, F: x.Value})
		return r, FloatType, true, nil

	case *BoolLit:
		r := g.alloc()
		v := int64(0)
		if x.Value {
			v = 1
		}
		g.emit(dex.Insn{Op: dex.OpConstInt, A: r, Imm: v})
		return r, BoolType, true, nil

	case *NullLit:
		r := g.alloc()
		g.emit(dex.Insn{Op: dex.OpConstInt, A: r, Imm: 0})
		return r, NullType, true, nil

	case *This:
		if g.decl.Class == "" {
			return 0, Type{}, false, g.c.errf(x.Pos(), "this outside a method")
		}
		return 0, ClassType(g.decl.Class), false, nil

	case *Ident:
		if lv, ok := g.lookup(x.Name); ok {
			return lv.reg, lv.ty, false, nil
		}
		if gi, ok := g.c.globals[x.Name]; ok {
			r := g.alloc()
			g.emit(dex.Insn{Op: loadGlobalOp(gi.ty), A: r, Imm: int64(gi.slot)})
			return r, gi.ty, true, nil
		}
		return 0, Type{}, false, g.c.errf(x.Pos(), "undefined variable %s", x.Name)

	case *Unary:
		switch x.Op {
		case "-":
			vr, vt, vOwned, err := g.genExpr(x.X)
			if err != nil {
				return 0, Type{}, false, err
			}
			var op dex.Op
			switch vt.K {
			case TInt:
				op = dex.OpNegInt
			case TFloat:
				op = dex.OpNegFloat
			default:
				return 0, Type{}, false, g.c.errf(x.Pos(), "cannot negate %s", vt)
			}
			r := g.alloc()
			g.emit(dex.Insn{Op: op, A: r, B: vr})
			if vOwned {
				g.free(vr)
			}
			return r, vt, true, nil
		case "!":
			return g.materializeBool(e)
		}
		return 0, Type{}, false, g.c.errf(x.Pos(), "unknown unary %s", x.Op)

	case *Binary:
		switch x.Op {
		case "&&", "||", "==", "!=", "<", "<=", ">", ">=":
			return g.materializeBool(e)
		}
		lr, lt, lOwned, err := g.genExpr(x.X)
		if err != nil {
			return 0, Type{}, false, err
		}
		rr, rty, rOwned, err := g.genExpr(x.Y)
		if err != nil {
			return 0, Type{}, false, err
		}
		op, resTy, err := arithOp(x.Op, lt, rty, func(format string, args ...any) error {
			return g.c.errf(x.Pos(), format, args...)
		})
		if err != nil {
			return 0, Type{}, false, err
		}
		r := g.alloc()
		g.emit(dex.Insn{Op: op, A: r, B: lr, C: rr})
		if lOwned {
			g.free(lr)
		}
		if rOwned {
			g.free(rr)
		}
		return r, resTy, true, nil

	case *Call:
		return g.genCall(x)

	case *MethodCall:
		return g.genMethodCall(x)

	case *Field:
		rr, rty, rOwned, err := g.genExpr(x.Recv)
		if err != nil {
			return 0, Type{}, false, err
		}
		if rty.K != TClass {
			return 0, Type{}, false, g.c.errf(x.Pos(), "field access on non-object %s", rty)
		}
		fi, ok := g.c.classes[rty.Class].fields[x.Name]
		if !ok {
			return 0, Type{}, false, g.c.errf(x.Pos(), "class %s has no field %s", rty.Class, x.Name)
		}
		r := g.alloc()
		g.emit(dex.Insn{Op: floadOp(fi.ty), A: r, B: rr, Imm: int64(fi.slot)})
		if rOwned {
			g.free(rr)
		}
		return r, fi.ty, true, nil

	case *Index:
		ar, at, aOwned, err := g.genExpr(x.Arr)
		if err != nil {
			return 0, Type{}, false, err
		}
		if at.K != TArray {
			return 0, Type{}, false, g.c.errf(x.Pos(), "indexing non-array %s", at)
		}
		ir, it, iOwned, err := g.genExpr(x.Idx)
		if err != nil {
			return 0, Type{}, false, err
		}
		if it.K != TInt {
			return 0, Type{}, false, g.c.errf(x.Pos(), "array index must be int, got %s", it)
		}
		r := g.alloc()
		g.emit(dex.Insn{Op: aloadOp(*at.Elem), A: r, B: ar, C: ir})
		if aOwned {
			g.free(ar)
		}
		if iOwned {
			g.free(ir)
		}
		return r, *at.Elem, true, nil

	case *NewArray:
		if err := g.c.checkType(x.Elem, x.Pos()); err != nil {
			return 0, Type{}, false, err
		}
		sr, sty, sOwned, err := g.genExpr(x.Size)
		if err != nil {
			return 0, Type{}, false, err
		}
		if sty.K != TInt {
			return 0, Type{}, false, g.c.errf(x.Pos(), "array size must be int, got %s", sty)
		}
		var op dex.Op
		switch kindOf(x.Elem) {
		case dex.KindFloat:
			op = dex.OpNewArrayFloat
		case dex.KindRef:
			op = dex.OpNewArrayRef
		default:
			op = dex.OpNewArrayInt
		}
		r := g.alloc()
		g.emit(dex.Insn{Op: op, A: r, B: sr})
		if sOwned {
			g.free(sr)
		}
		return r, ArrayOf(x.Elem), true, nil

	case *NewObject:
		ci, ok := g.c.classes[x.Class]
		if !ok {
			return 0, Type{}, false, g.c.errf(x.Pos(), "unknown class %s", x.Class)
		}
		r := g.alloc()
		g.emit(dex.Insn{Op: dex.OpNewInstance, A: r, Sym: int(ci.id)})
		return r, ClassType(x.Class), true, nil
	}
	return 0, Type{}, false, g.c.errf(0, "unhandled expression %T", e)
}

// arithOp maps a non-comparison binary operator over operand types to an
// opcode and result type.
func arithOp(op string, l, r Type, errf func(string, ...any) error) (dex.Op, Type, error) {
	bothInt := l.K == TInt && r.K == TInt
	bothFloat := l.K == TFloat && r.K == TFloat
	switch op {
	case "+", "-", "*", "/":
		if bothInt {
			m := map[string]dex.Op{"+": dex.OpAddInt, "-": dex.OpSubInt, "*": dex.OpMulInt, "/": dex.OpDivInt}
			return m[op], IntType, nil
		}
		if bothFloat {
			m := map[string]dex.Op{"+": dex.OpAddFloat, "-": dex.OpSubFloat, "*": dex.OpMulFloat, "/": dex.OpDivFloat}
			return m[op], FloatType, nil
		}
		return 0, Type{}, errf("operator %s needs matching numeric operands, got %s and %s (use itof/ftoi)", op, l, r)
	case "%":
		if bothInt {
			return dex.OpRemInt, IntType, nil
		}
		return 0, Type{}, errf("%% needs int operands, got %s and %s", l, r)
	case "&", "|", "^", "<<", ">>":
		if bothInt {
			m := map[string]dex.Op{"&": dex.OpAndInt, "|": dex.OpOrInt, "^": dex.OpXorInt, "<<": dex.OpShlInt, ">>": dex.OpShrInt}
			return m[op], IntType, nil
		}
		return 0, Type{}, errf("operator %s needs int operands, got %s and %s", op, l, r)
	}
	return 0, Type{}, errf("unknown operator %s", op)
}

// materializeBool evaluates a boolean expression to a 0/1 register through
// the branch generator.
func (g *fngen) materializeBool(e Expr) (int, Type, bool, error) {
	r := g.alloc()
	lt, lf, end := g.newLabel(), g.newLabel(), g.newLabel()
	if err := g.genCond(e, lt, lf); err != nil {
		return 0, Type{}, false, err
	}
	g.bind(lt)
	g.emit(dex.Insn{Op: dex.OpConstInt, A: r, Imm: 1})
	g.emitGoto(end)
	g.bind(lf)
	g.emit(dex.Insn{Op: dex.OpConstInt, A: r, Imm: 0})
	g.bind(end)
	return r, BoolType, true, nil
}

var cmpOps = map[string]dex.Op{
	"==": dex.OpIfEq, "!=": dex.OpIfNe, "<": dex.OpIfLt,
	"<=": dex.OpIfLe, ">": dex.OpIfGt, ">=": dex.OpIfGe,
}

// genCond compiles e as a branch to lt (true) or lf (false).
func (g *fngen) genCond(e Expr, ltrue, lfalse *label) error {
	switch x := e.(type) {
	case *BoolLit:
		if x.Value {
			g.emitGoto(ltrue)
		} else {
			g.emitGoto(lfalse)
		}
		return nil

	case *Unary:
		if x.Op == "!" {
			return g.genCond(x.X, lfalse, ltrue)
		}

	case *Binary:
		switch x.Op {
		case "&&":
			mid := g.newLabel()
			if err := g.genCond(x.X, mid, lfalse); err != nil {
				return err
			}
			g.bind(mid)
			return g.genCond(x.Y, ltrue, lfalse)
		case "||":
			mid := g.newLabel()
			if err := g.genCond(x.X, ltrue, mid); err != nil {
				return err
			}
			g.bind(mid)
			return g.genCond(x.Y, ltrue, lfalse)
		case "==", "!=", "<", "<=", ">", ">=":
			lr, lty, lOwned, err := g.genExpr(x.X)
			if err != nil {
				return err
			}
			rr, rty, rOwned, err := g.genExpr(x.Y)
			if err != nil {
				return err
			}
			op := cmpOps[x.Op]
			switch {
			case lty.K == TInt && rty.K == TInt, lty.K == TBool && rty.K == TBool:
				g.emitBranch(op, lr, rr, ltrue)
			case lty.K == TFloat && rty.K == TFloat:
				// cmp-float then compare the -1/0/1 cookie with zero.
				cr := g.alloc()
				g.emit(dex.Insn{Op: dex.OpCmpFloat, A: cr, B: lr, C: rr})
				zr := g.alloc()
				g.emit(dex.Insn{Op: dex.OpConstInt, A: zr, Imm: 0})
				g.emitBranch(op, cr, zr, ltrue)
				g.free(cr)
				g.free(zr)
			case lty.IsRef() && rty.IsRef() && (x.Op == "==" || x.Op == "!="):
				g.emitBranch(op, lr, rr, ltrue)
			default:
				return g.c.errf(x.Pos(), "cannot compare %s with %s", lty, rty)
			}
			g.emitGoto(lfalse)
			if lOwned {
				g.free(lr)
			}
			if rOwned {
				g.free(rr)
			}
			return nil
		}
	}

	// General boolean-valued expression: compare against zero.
	r, ty, owned, err := g.genExpr(e)
	if err != nil {
		return err
	}
	if ty.K != TBool {
		return g.c.errf(e.Pos(), "condition must be bool, got %s", ty)
	}
	zr := g.alloc()
	g.emit(dex.Insn{Op: dex.OpConstInt, A: zr, Imm: 0})
	g.emitBranch(dex.OpIfNe, r, zr, ltrue)
	g.emitGoto(lfalse)
	g.free(zr)
	if owned {
		g.free(r)
	}
	return nil
}

// typeForKind maps a native's dex kind back to a minic surface type.
func typeForKind(k dex.Kind) Type {
	switch k {
	case dex.KindFloat:
		return FloatType
	case dex.KindVoid:
		return VoidType
	default:
		return IntType
	}
}

func (g *fngen) genCall(x *Call) (int, Type, bool, error) {
	// Conversion and inspection builtins.
	switch x.Name {
	case "itof", "ftoi", "len":
		if len(x.Args) != 1 {
			return 0, Type{}, false, g.c.errf(x.Pos(), "%s takes one argument", x.Name)
		}
		vr, vt, vOwned, err := g.genExpr(x.Args[0])
		if err != nil {
			return 0, Type{}, false, err
		}
		r := g.alloc()
		switch x.Name {
		case "itof":
			if vt.K != TInt {
				return 0, Type{}, false, g.c.errf(x.Pos(), "itof takes int, got %s", vt)
			}
			g.emit(dex.Insn{Op: dex.OpIntToFloat, A: r, B: vr})
			if vOwned {
				g.free(vr)
			}
			return r, FloatType, true, nil
		case "ftoi":
			if vt.K != TFloat {
				return 0, Type{}, false, g.c.errf(x.Pos(), "ftoi takes float, got %s", vt)
			}
			g.emit(dex.Insn{Op: dex.OpFloatToInt, A: r, B: vr})
			if vOwned {
				g.free(vr)
			}
			return r, IntType, true, nil
		default: // len
			if vt.K != TArray {
				return 0, Type{}, false, g.c.errf(x.Pos(), "len takes an array, got %s", vt)
			}
			g.emit(dex.Insn{Op: dex.OpArrayLen, A: r, B: vr})
			if vOwned {
				g.free(vr)
			}
			return r, IntType, true, nil
		}
	}

	// Native builtins.
	if nname, ok := Builtins[x.Name]; ok {
		nid := g.c.natives[nname]
		nt := g.c.prog.Natives[nid]
		if len(x.Args) != len(nt.Params) {
			return 0, Type{}, false, g.c.errf(x.Pos(), "%s takes %d arguments, got %d", x.Name, len(nt.Params), len(x.Args))
		}
		regs := make([]int, len(x.Args))
		var frees []int
		for i, a := range x.Args {
			ar, at, aOwned, err := g.genExpr(a)
			if err != nil {
				return 0, Type{}, false, err
			}
			want := typeForKind(nt.Params[i])
			if !at.Equal(want) && !(want.K == TInt && at.K == TBool) {
				return 0, Type{}, false, g.c.errf(x.Pos(), "%s argument %d: want %s, got %s", x.Name, i+1, want, at)
			}
			regs[i] = ar
			if aOwned {
				frees = append(frees, ar)
			}
		}
		r := 0
		ret := typeForKind(nt.Ret)
		owned := false
		if ret.K != TVoid {
			r = g.alloc()
			owned = true
		}
		g.emit(dex.Insn{Op: dex.OpInvokeNative, A: r, Sym: int(nid), Args: regs})
		for _, fr := range frees {
			g.free(fr)
		}
		return r, ret, owned, nil
	}

	// Free functions.
	fi, ok := g.c.funcs[x.Name]
	if !ok {
		return 0, Type{}, false, g.c.errf(x.Pos(), "undefined function %s", x.Name)
	}
	if len(x.Args) != len(fi.decl.Params) {
		return 0, Type{}, false, g.c.errf(x.Pos(), "%s takes %d arguments, got %d", x.Name, len(fi.decl.Params), len(x.Args))
	}
	regs := make([]int, len(x.Args))
	var frees []int
	for i, a := range x.Args {
		ar, at, aOwned, err := g.genExpr(a)
		if err != nil {
			return 0, Type{}, false, err
		}
		if err := g.checkAssignable(fi.decl.Params[i].Type, at, x.Pos()); err != nil {
			return 0, Type{}, false, err
		}
		regs[i] = ar
		if aOwned {
			frees = append(frees, ar)
		}
	}
	r := 0
	owned := false
	if fi.decl.Ret.K != TVoid {
		r = g.alloc()
		owned = true
	}
	g.emit(dex.Insn{Op: dex.OpInvokeStatic, A: r, Sym: int(fi.id), Args: regs})
	for _, fr := range frees {
		g.free(fr)
	}
	return r, fi.decl.Ret, owned, nil
}

func (g *fngen) genMethodCall(x *MethodCall) (int, Type, bool, error) {
	rr, rty, rOwned, err := g.genExpr(x.Recv)
	if err != nil {
		return 0, Type{}, false, err
	}
	if rty.K != TClass {
		return 0, Type{}, false, g.c.errf(x.Pos(), "method call on non-object %s", rty)
	}
	fi, ok := g.c.classes[rty.Class].methods[x.Name]
	if !ok {
		return 0, Type{}, false, g.c.errf(x.Pos(), "class %s has no method %s", rty.Class, x.Name)
	}
	if len(x.Args) != len(fi.decl.Params) {
		return 0, Type{}, false, g.c.errf(x.Pos(), "%s.%s takes %d arguments, got %d", rty.Class, x.Name, len(fi.decl.Params), len(x.Args))
	}
	regs := make([]int, 0, len(x.Args)+1)
	regs = append(regs, rr)
	var frees []int
	if rOwned {
		frees = append(frees, rr)
	}
	for i, a := range x.Args {
		ar, at, aOwned, err := g.genExpr(a)
		if err != nil {
			return 0, Type{}, false, err
		}
		if err := g.checkAssignable(fi.decl.Params[i].Type, at, x.Pos()); err != nil {
			return 0, Type{}, false, err
		}
		regs = append(regs, ar)
		if aOwned {
			frees = append(frees, ar)
		}
	}
	r := 0
	owned := false
	if fi.decl.Ret.K != TVoid {
		r = g.alloc()
		owned = true
	}
	g.emit(dex.Insn{Op: dex.OpInvokeVirtual, A: r, Sym: int(fi.id), Args: regs})
	for _, fr := range frees {
		g.free(fr)
	}
	return r, fi.decl.Ret, owned, nil
}
