package device

import (
	"math"
	"testing"

	"replayopt/internal/stats"
)

func TestReplayTimeIsNearlyDeterministic(t *testing.T) {
	d := New(1)
	var times []float64
	for i := 0; i < 100; i++ {
		times = append(times, d.ReplayMillis(1_000_000))
	}
	m := stats.Mean(times)
	sd := math.Sqrt(stats.Variance(times))
	if sd/m > 0.01 {
		t.Errorf("replay noise %.3f%% exceeds 1%%", 100*sd/m)
	}
	// Pinned frequency: ~1e6 cycles at 2.84 GHz ≈ 0.35 ms.
	if m < 0.3 || m > 0.4 {
		t.Errorf("replay time %v ms implausible for 1M cycles", m)
	}
}

func TestOnlineTimeIsMuchNoisier(t *testing.T) {
	d := New(2)
	var online, replay []float64
	for i := 0; i < 300; i++ {
		online = append(online, d.OnlineMillis(1_000_000))
		replay = append(replay, d.ReplayMillis(1_000_000))
	}
	cvOn := math.Sqrt(stats.Variance(online)) / stats.Mean(online)
	cvRe := math.Sqrt(stats.Variance(replay)) / stats.Mean(replay)
	if cvOn < 10*cvRe {
		t.Errorf("online CV %.3f not ≫ replay CV %.4f", cvOn, cvRe)
	}
	// Online is never faster than the pinned-max-frequency ideal.
	ideal := 1_000_000.0 / cyclesPerMs
	for _, x := range online {
		if x < ideal*0.9 {
			t.Fatalf("online time %v beats pinned hardware %v", x, ideal)
		}
	}
}

func TestSameSeedSameNoise(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 50; i++ {
		if a.OnlineMillis(12345) != b.OnlineMillis(12345) {
			t.Fatal("same seed produced different noise")
		}
	}
}

func TestCaptureOverheadsInPaperRanges(t *testing.T) {
	d := New(3)
	// A typical process: boot image ~3100 pages + a few thousand app pages.
	fork := d.ForkMillis(5000)
	if fork < 1 || fork > 8 {
		t.Errorf("fork %v ms outside the 1-6 ms ballpark", fork)
	}
	prep := d.PrepMillis(12, 4500)
	if prep < 3 || prep > 12 {
		t.Errorf("prep %v ms outside the 4-11 ms ballpark", prep)
	}
	fc := d.FaultCoWMillis(300, 200)
	if fc < 2 || fc > 10 {
		t.Errorf("faults+CoW %v ms implausible", fc)
	}
	// A write-heavy region (BubbleSort-like): ~1500 CoWs.
	heavy := d.FaultCoWMillis(200, 1500)
	if heavy < 10 || heavy > 25 {
		t.Errorf("write-heavy faults+CoW %v ms, want ~16", heavy)
	}
}

func TestEagerCopyCostsMoreThanCoW(t *testing.T) {
	d := New(4)
	faults, cows := 800, 150 // mostly-read region
	cow := d.FaultCoWMillis(faults, cows)
	eager := d.EagerCopyMillis(faults)
	if eager <= cow {
		t.Errorf("CERE-style eager copy (%v ms) not slower than CoW (%v ms)", eager, cow)
	}
}

func TestReplayPolicy(t *testing.T) {
	d := New(5)
	if !d.CanReplay() {
		t.Error("fresh device should allow replays")
	}
	d.Charged = false
	if d.CanReplay() {
		t.Error("discharged device must not replay")
	}
}
