// Package device models the evaluation hardware of §4 — a Pixel-4-class
// phone with eight cores whose frequencies the OS governs online and the
// framework pins during replay — plus the millisecond-level costs of the
// kernel operations the capture mechanism performs (Fig. 10).
//
// Everything is driven by a seeded RNG: the same seed reproduces the same
// "measurement noise", which is what makes the experiments repeatable.
// Device methods are safe for concurrent use: draws from the device's own
// noise source are serialized by a mutex. Callers that additionally need
// order-independent noise (the parallel candidate evaluator) pass their own
// per-measurement RNG to ReplayMillisSeeded instead.
package device

import (
	"math/rand"
	"sync"
)

// MaxFreqGHz is the big-core maximum frequency (Snapdragon 855 prime core).
const MaxFreqGHz = 2.84

// cyclesPerMs at pinned maximum frequency.
const cyclesPerMs = MaxFreqGHz * 1e6

// Device is one simulated phone.
type Device struct {
	mu  sync.Mutex
	rng *rand.Rand

	// Online DVFS state: the governor's current relative frequency,
	// evolving as a bounded random walk.
	freqFactor float64

	// Charging/idle state for the §3.7 replay scheduler.
	Charged bool
	Idle    bool
}

// New returns a device with a seeded noise source, charged and idle (the
// state in which replays are allowed to run).
func New(seed int64) *Device {
	return &Device{rng: rand.New(rand.NewSource(seed)), freqFactor: 0.85, Charged: true, Idle: true}
}

// CanReplay reports whether the §3.7 policy allows replays now: device idle
// and fully charged.
func (d *Device) CanReplay() bool { return d.Charged && d.Idle }

// ReplayMillis converts a cycle count to wall-clock milliseconds under
// replay conditions: all cores pinned to maximum frequency, an otherwise
// idle system, residual noise well under a percent (§4).
func (d *Device) ReplayMillis(cycles uint64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return float64(cycles) / cyclesPerMs * replayNoise(d.rng)
}

// ReplayMillisSeeded is ReplayMillis with the noise drawn from the caller's
// rng instead of the device's shared source. Concurrent evaluators use it so
// a measurement's noise depends only on what is being measured, never on the
// order workers happen to finish in — the property that keeps parallel
// search traces byte-identical at any worker count.
func ReplayMillisSeeded(cycles uint64, rng *rand.Rand) float64 {
	return float64(cycles) / cyclesPerMs * replayNoise(rng)
}

func replayNoise(rng *rand.Rand) float64 {
	noise := 1 + rng.NormFloat64()*0.004
	if noise < 0.99 {
		noise = 0.99
	}
	return noise
}

// OnlineMillis converts a cycle count to milliseconds under interactive
// conditions: governor-controlled frequency (a random walk between 45% and
// 100% of max), occasional background contention, and scheduling jitter.
// This is the noise that makes online optimization evaluation so slow to
// converge (Fig. 3).
func (d *Device) OnlineMillis(cycles uint64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Governor random walk.
	d.freqFactor += d.rng.NormFloat64() * 0.06
	if d.freqFactor < 0.45 {
		d.freqFactor = 0.45
	}
	if d.freqFactor > 1.0 {
		d.freqFactor = 1.0
	}
	t := float64(cycles) / (cyclesPerMs * d.freqFactor)
	// Background contention: occasionally another task steals the core.
	if d.rng.Float64() < 0.12 {
		t *= 1 + d.rng.ExpFloat64()*0.5
	}
	// Scheduling jitter.
	t *= 1 + d.rng.NormFloat64()*0.03
	if t < 0 {
		t = 0
	}
	return t
}

// Capture overhead model (Fig. 10). Constants are calibrated so that
// typical captures land in the paper's ranges: fork 1-6 ms, preparation
// 4-11 ms, faults+CoW usually small but up to ~16 ms for write-heavy
// regions; total average ~15 ms.
const (
	forkBaseMs    = 0.9
	forkPerPageMs = 0.00055 // page-table duplication per mapped page

	prepBaseMs     = 1.8     // parsing /proc/self/maps
	prepPerEntryMs = 0.15    // per map entry processed
	prepPerPageMs  = 0.00095 // read-protecting each page

	faultMs = 0.011 // user-space fault handler round trip
	cowMs   = 0.009 // kernel Copy-on-Write duplication
)

// ForkMillis models fork(2) for a space with the given number of mapped
// pages, with ±10% noise.
func (d *Device) ForkMillis(mappedPages int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := forkBaseMs + forkPerPageMs*float64(mappedPages)
	return t * (1 + d.rng.NormFloat64()*0.1)
}

// PrepMillis models parsing the page map and read-protecting pages.
func (d *Device) PrepMillis(mapEntries, protectedPages int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := prepBaseMs + prepPerEntryMs*float64(mapEntries) + prepPerPageMs*float64(protectedPages)
	return t * (1 + d.rng.NormFloat64()*0.1)
}

// FaultCoWMillis models the in-region overhead: read faults taken plus
// Copy-on-Write page duplications.
func (d *Device) FaultCoWMillis(faults, cows int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := faultMs*float64(faults) + cowMs*float64(cows)
	return t * (1 + d.rng.NormFloat64()*0.1)
}

// EagerCopyMillis models the CERE-style alternative (§6): copying every
// faulted page to a user-space buffer at first touch, whether or not it is
// ever modified. Used by the CoW ablation benchmark.
func (d *Device) EagerCopyMillis(faults int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	const eagerPerPageMs = 0.031 // fault + user-space copy + bookkeeping
	t := eagerPerPageMs * float64(faults)
	return t * (1 + d.rng.NormFloat64()*0.1)
}
