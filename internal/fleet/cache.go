// The shared artifact cache: finished winners, keyed by (app, code-image
// fingerprint, device class), written atomically and validated on every
// fetch. The key scheme is the safety argument for cross-device sharing —
// an artifact applies only to the exact code image its search optimized
// (ImageFP), on the hardware class it was measured on (DeviceClass). The
// lock-validation-on-fetch rule closes the remaining hole: if the compiler
// drifted since the artifact was cut (a pass renamed, a parameter clamped),
// rtrace.CheckLock catches it at fetch time and the cache refuses, so a
// stale winner is re-searched instead of silently miscompiling on device.

package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"replayopt/internal/aot"
	"replayopt/internal/core"
	"replayopt/internal/lir/rtrace"
	"replayopt/internal/machine"
)

// ErrArtifactNotFound marks a cache miss: no finished search for this key.
var ErrArtifactNotFound = errors.New("fleet: artifact not found")

// ErrArtifactDrifted marks a cached artifact whose policy lock no longer
// audits clean against the current compiler: the fetch is refused.
var ErrArtifactDrifted = errors.New("fleet: cached artifact refused: policy lock drifted")

// ImageFP fingerprints an app's code image: the hash of its baseline AOT
// compile. Server and device compute it independently from the same
// program, so a device on a different app version misses the cache instead
// of fetching a lock cut for code it does not run.
func ImageFP(app *core.App) (string, error) {
	code, err := aot.Compile(app.Prog)
	if err != nil {
		return "", fmt.Errorf("fleet: image fingerprint: %w", err)
	}
	return fmt.Sprintf("%016x", machine.HashProgram(code)), nil
}

// ArtifactCache stores one JSON file per finished (app, image, class) key.
type ArtifactCache struct {
	dir string
}

// NewArtifactCache roots the cache at dir (created if needed).
func NewArtifactCache(dir string) (*ArtifactCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: artifact dir: %w", err)
	}
	return &ArtifactCache{dir: dir}, nil
}

func (c *ArtifactCache) path(app, imageFP, deviceClass string) string {
	// App and class names are registry-controlled (apps.ByName gates them at
	// the API boundary), so they are filesystem-safe by construction.
	return filepath.Join(c.dir, fmt.Sprintf("%s-%s-%s.json", app, deviceClass, imageFP))
}

// Put stores an artifact atomically: temp file, sync, rename. A coordinator
// killed mid-Put leaves either the old artifact or the new one, never a
// torn file.
func (c *ArtifactCache) Put(a *ArtifactResponse) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	final := c.path(a.App, a.ImageFP, a.DeviceClass)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("fleet: artifact write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: artifact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: artifact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: artifact rename: %w", err)
	}
	return nil
}

// Get fetches and validates an artifact. A missing key returns
// ErrArtifactNotFound; a present artifact whose lock shows static drift
// returns ErrArtifactDrifted along with the drift records — the caller
// refuses the fetch and (typically) re-enqueues the search.
func (c *ArtifactCache) Get(app, imageFP, deviceClass string) (*ArtifactResponse, []rtrace.Drift, error) {
	data, err := os.ReadFile(c.path(app, imageFP, deviceClass))
	if os.IsNotExist(err) {
		return nil, nil, ErrArtifactNotFound
	}
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: artifact read: %w", err)
	}
	var a ArtifactResponse
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, nil, fmt.Errorf("fleet: artifact corrupt: %w", err)
	}
	if a.Lock != nil {
		if drifts := rtrace.CheckLock(a.Lock); len(drifts) > 0 {
			return nil, drifts, ErrArtifactDrifted
		}
	}
	return &a, nil, nil
}
