package fleet

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"replayopt/internal/lir/rtrace"
	"replayopt/internal/obs"
)

// bootServer builds and starts a coordinator over dir, wrapped in an
// httptest server, plus a fast-retry client against it.
func bootServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := NewServer(Config{
		Dir: dir, Workers: workers, Scale: testScale(),
		Apps: []string{testApp}, Scope: obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	c := &Client{Base: hs.URL, Attempts: 3, Backoff: 5 * time.Millisecond}
	return s, hs, c
}

// waitJob polls until the job reaches state (or the deadline passes).
func waitJob(t *testing.T, s *Server, id, state string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j, ok := s.Jobs().Get(id); ok && j.State == state {
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
	j, _ := s.Jobs().Get(id)
	t.Fatalf("job %s never reached %s (now %+v)", id, state, j)
	return Job{}
}

// TestServerEndToEnd drives the full loop over HTTP: upload → search →
// artifact, with repeat fetches hitting the shared cache.
func TestServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, hs, c := bootServer(t, dir, 1)
	defer hs.Close()
	defer s.Drain()

	up, err := BuildDeviceStore(dir, testApp, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Upload(UploadRequest{App: testApp, DeviceID: "dev-1", DeviceClass: "classA", Store: up})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Snapshots != 1 || resp.JobID != JobID(testApp, "classA") {
		t.Fatalf("upload response %+v", resp)
	}

	waitJob(t, s, resp.JobID, JobDone, 2*time.Minute)
	art, err := c.Artifact(testApp, "classA", "")
	if err != nil {
		t.Fatalf("artifact after done job: %v", err)
	}
	if art.App != testApp || art.DeviceClass != "classA" || art.ImageFP == "" || art.TraceHash == "" {
		t.Fatalf("artifact %+v", art)
	}
	if !art.KeptBaseline && art.Lock == nil {
		t.Fatal("artifact carries no lock")
	}
	if art.Lock != nil {
		if drifts := rtrace.CheckLock(art.Lock); len(drifts) != 0 {
			t.Fatalf("served lock drifts against its own compiler: %+v", drifts)
		}
	}

	// A second device of the same class: upload dedups, artifact is a pure
	// cache hit — no second search.
	up2, _ := BuildDeviceStore(dir, testApp, "dev-2")
	resp2, err := c.Upload(UploadRequest{App: testApp, DeviceID: "dev-2", DeviceClass: "classA", Store: up2})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.JobState != JobDone {
		t.Fatalf("second device's job state %q, want done", resp2.JobState)
	}
	art2, err := c.Artifact(testApp, "classA", "")
	if err != nil {
		t.Fatal(err)
	}
	if art2.TraceHash != art.TraceHash {
		t.Fatal("cache served a different artifact")
	}
	if hits := s.sc.Counter("fleet.artifact_hits").Value(); hits < 2 {
		t.Fatalf("artifact_hits = %d, want >= 2", hits)
	}

	// An unknown device class misses until its own search runs.
	if _, err := c.Artifact(testApp, "classZ", ""); !errors.Is(err, ErrNotReady) {
		t.Fatalf("unseen class: err = %v, want ErrNotReady", err)
	}

	// Status reflects the finished job.
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].State != JobDone {
		t.Fatalf("status %+v", st)
	}
}

// TestArtifactLockDriftRefusedOnFetch tampers the cached artifact's lock so
// it references a pass the compiler does not have: the next fetch must be
// refused (409 → ErrRefused) and the job re-enqueued for a fresh search.
func TestArtifactLockDriftRefusedOnFetch(t *testing.T) {
	dir := t.TempDir()
	s, hs, c := bootServer(t, dir, 1)
	defer hs.Close()
	defer s.Drain()

	up, _ := BuildDeviceStore(dir, testApp, "dev-1")
	resp, err := c.Upload(UploadRequest{App: testApp, DeviceID: "dev-1", DeviceClass: "classA", Store: up})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, resp.JobID, JobDone, 2*time.Minute)
	art, err := c.Artifact(testApp, "classA", "")
	if err != nil {
		t.Fatal(err)
	}
	if art.Lock == nil {
		t.Skip("search kept the baseline; no lock to tamper")
	}

	// Simulate compiler drift by injecting an unknown pass into the cached
	// lock (equivalent to the registry dropping one).
	art.Lock.Passes = append(art.Lock.Passes, rtrace.TracedPass{Name: "no-such-pass"})
	if err := s.cache.Put(art); err != nil {
		t.Fatal(err)
	}
	_, err = c.Artifact(testApp, "classA", "")
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("drifted artifact: err = %v, want ErrRefused", err)
	}
	if got := s.sc.Counter("fleet.artifact_refused").Value(); got != 1 {
		t.Fatalf("fleet.artifact_refused = %d", got)
	}
	// The refusal re-enqueued the search; it eventually repairs the cache.
	waitJob(t, s, resp.JobID, JobDone, 2*time.Minute)
	fixed, err := c.Artifact(testApp, "classA", "")
	if err != nil {
		t.Fatalf("artifact after re-search: %v", err)
	}
	if fixed.TraceHash != art.TraceHash {
		t.Fatal("re-search made different decisions than the original")
	}
}

// TestImageFingerprintMismatchRefused: a device on a different code image
// must not receive the cached lock.
func TestImageFingerprintMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s, hs, c := bootServer(t, dir, 1)
	defer hs.Close()
	defer s.Drain()
	_, err := c.Artifact(testApp, "classA", "0123456789abcdef")
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

// TestDrainPersistsPendingWork: a drained coordinator parks its queue on
// disk; the next boot requeues and finishes it.
func TestDrainPersistsPendingWork(t *testing.T) {
	dir := t.TempDir()
	s, hs, c := bootServer(t, dir, 1)

	up, _ := BuildDeviceStore(dir, testApp, "dev-1")
	resp, err := c.Upload(UploadRequest{App: testApp, DeviceID: "dev-1", DeviceClass: "classA", Store: up})
	if err != nil {
		t.Fatal(err)
	}
	// Drain immediately: the search is either unstarted or interrupted at
	// its first batch boundary; either way the job must persist as pending
	// (or already done if the machine was absurdly fast).
	s.Drain()
	hs.Close()

	j, ok := s.Jobs().Get(resp.JobID)
	if !ok {
		t.Fatal("job lost across drain")
	}
	if j.State == JobDone {
		t.Skip("search finished before drain; nothing to resume")
	}
	if j.State != JobPending {
		t.Fatalf("drained job state %q, want pending", j.State)
	}

	s2, hs2, c2 := bootServer(t, dir, 1)
	defer hs2.Close()
	defer s2.Drain()
	waitJob(t, s2, resp.JobID, JobDone, 2*time.Minute)
	if _, err := c2.Artifact(testApp, "classA", ""); err != nil {
		t.Fatalf("artifact after resume: %v", err)
	}
	journal := filepath.Join(dir, "journals", resp.JobID+".jsonl")
	fj, err := OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer fj.Close()
	if fj.Len() == 0 {
		t.Fatal("finished job left no journal")
	}
}
