// Package fleet is the crowd-scale deployment of the paper's Fig. 6 loop:
// the coordinator that makes one device's offline GA search pay for every
// device's install. The paper's model — many devices capture hot-region
// state online, an offline search evaluates candidates by replay, and the
// winning binary is reinstalled transparently (§2, Fig. 6) — is combined
// here with the crowdsourced iterative compilation of Mpeis et al. 2015 and
// ShareJIT-style cross-process artifact sharing, applied to AOT artifacts.
//
// The coordinator has three halves:
//
//   - Capture intake: devices POST their content-addressed capture stores;
//     uploads are merged chunk-level into a sharded multi-tenant castore
//     (one shard per app fingerprint, per-shard locking), so a thousand
//     devices uploading the same app's boot pages store them once
//     (DESIGN.md §10 dedup at fleet scale, Fig. 11's budget).
//   - Search queue: one resumable GA search job per (app × device class),
//     checkpointed through the deterministic decision trace (§3.6, §3.7):
//     a killed coordinator resumes mid-search without re-running finished
//     evaluations, and the resumed trace is byte-identical.
//   - Artifact cache: finished winners are served keyed by (app, code-image
//     fingerprint, device class), each carrying its rtrace policy lock; a
//     fetch validates the lock against the current compiler and refuses on
//     static drift rather than shipping a binary that would miscompile.
//
// Everything speaks versioned HTTP/JSON: APIVersion rides every message,
// servers and clients decode tolerantly (unknown fields ignored), and any
// wire schema change requires a version bump (CONTRIBUTING.md).
package fleet

import (
	"fmt"
	"hash/fnv"

	"replayopt/internal/ga"
	"replayopt/internal/lir/rtrace"
)

// APIVersion is the fleet wire-protocol version. Bump on any schema change;
// decoding stays tolerant so mixed-version fleets degrade readably instead
// of corrupting state.
const APIVersion = 1

// UploadRequest is a device's capture upload: the raw bytes of its local
// content-addressed store (internal/capture/castore format). The server
// merges it chunk-level into the app's shard, so repeated pages across
// devices are stored once.
type UploadRequest struct {
	APIVersion  int    `json:"api_version"`
	App         string `json:"app"`
	DeviceID    string `json:"device_id"`
	DeviceClass string `json:"device_class"`
	Store       []byte `json:"store"`
}

// UploadResponse acknowledges a merged upload with its dedup accounting and
// the state of the (app, device class) search job the upload feeds.
type UploadResponse struct {
	APIVersion int    `json:"api_version"`
	Shard      string `json:"shard"`

	Snapshots     int   `json:"snapshots"`
	ChunksWritten int   `json:"chunks_written"`
	ChunksReused  int   `json:"chunks_reused"`
	BytesReused   int64 `json:"bytes_reused"`
	RawWritten    int64 `json:"raw_written"`

	JobID    string `json:"job_id"`
	JobState string `json:"job_state"`
}

// ArtifactResponse is a served winner: the locked policy, its provenance,
// and its measured worth. A device applies it with the core lock-validated
// install path instead of searching itself.
type ArtifactResponse struct {
	APIVersion  int    `json:"api_version"`
	App         string `json:"app"`
	DeviceClass string `json:"device_class"`
	// ImageFP fingerprints the code image the lock was cut against; a
	// device whose app binary hashes differently must not apply the lock.
	ImageFP string       `json:"image_fp"`
	Lock    *rtrace.Lock `json:"lock"`

	// Search provenance: the decision-trace hash and evaluation count prove
	// which search produced this artifact (kill-and-resume reproduces both).
	TraceHash   string `json:"trace_hash"`
	Evaluations int    `json:"evaluations"`

	MeanMs        float64 `json:"mean_ms"`
	AndroidMeanMs float64 `json:"android_mean_ms"`
	Speedup       float64 `json:"speedup"`

	// KeptBaseline marks a search that never beat the out-of-the-box
	// binary; the artifact then carries no lock and devices keep what they
	// have.
	KeptBaseline bool `json:"kept_baseline,omitempty"`
}

// StatusJob is one job row of the status endpoint.
type StatusJob struct {
	ID          string `json:"id"`
	App         string `json:"app"`
	DeviceClass string `json:"device_class"`
	State       string `json:"state"`
	Attempts    int    `json:"attempts"`
	Error       string `json:"error,omitempty"`
	// Resumed is the journal-served evaluation count of the last run — >0
	// means a kill or drain was recovered without repeating work.
	Resumed int `json:"resumed,omitempty"`
}

// StatusResponse summarizes the coordinator.
type StatusResponse struct {
	APIVersion int         `json:"api_version"`
	Draining   bool        `json:"draining"`
	QueueDepth int         `json:"queue_depth"`
	Workers    int         `json:"workers"`
	Jobs       []StatusJob `json:"jobs"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	APIVersion int    `json:"api_version"`
	Error      string `json:"error"`
}

// ShardID maps an app to its shard: the fleet is multi-tenant by app, and
// hashing the name (FNV-1a, hex) keeps shard names filesystem-safe and
// stable across restarts. Uploads for different apps land in different
// shards and never contend on a lock.
func ShardID(app string) string {
	h := fnv.New64a()
	h.Write([]byte(app))
	return fmt.Sprintf("%016x", h.Sum64())
}

// JobID names the one search job for an (app, device class) pair — the
// dedup unit: a thousand devices of the same class requesting the same app
// share a single search.
func JobID(app, deviceClass string) string {
	return app + "@" + deviceClass
}

// ClassSeed derives the deterministic search seed for an (app, device
// class) pair. Different classes search with different seeds (their
// hardware differs, so their winners may too); the same pair always
// searches identically, which is what makes kill-and-resume and the
// trace-hash provenance checkable.
func ClassSeed(app, deviceClass string) int64 {
	h := fnv.New64a()
	h.Write([]byte(app))
	h.Write([]byte{0})
	h.Write([]byte(deviceClass))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// TraceHash condenses a search's decision trace to a comparable hex digest
// (FNV-1a over the DecisionTrace text). Two searches with equal hashes made
// the same decisions in the same order.
func TraceHash(res *ga.Result) string {
	h := fnv.New64a()
	h.Write([]byte(res.DecisionTrace()))
	return fmt.Sprintf("%016x", h.Sum64())
}
