package fleet

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"replayopt/internal/capture/castore"
	"replayopt/internal/ga"
	"replayopt/internal/obs"
)

// evalForTest fabricates a distinguishable evaluation for journal tests.
func evalForTest(fp uint64) ga.Evaluation {
	return ga.Evaluation{MeanMs: float64(fp) * 1.5, SizeBytes: int(fp), BinaryHash: fp * 31}
}

// statusServer always answers with the given status code.
func statusServer(code func() int) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(code())
	}))
}

// testScale keeps coordinator searches cheap enough for CI while still
// running the full Fig. 6 pipeline per job.
func testScale() SearchScale {
	return SearchScale{Population: 6, Generations: 2, HillClimbBudget: 4, OnlineRuns: 2, Parallelism: 2}
}

const testApp = "FFT"

func TestShardIDStableAndTenantSeparated(t *testing.T) {
	if ShardID("FFT") != ShardID("FFT") {
		t.Fatal("shard id not stable")
	}
	if ShardID("FFT") == ShardID("SOR") {
		t.Fatal("different apps share a shard")
	}
	if JobID("FFT", "arm64-big") != "FFT@arm64-big" {
		t.Fatalf("JobID = %q", JobID("FFT", "arm64-big"))
	}
}

func TestShardMergeDedupsAcrossDevices(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(dir, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	up1, err := BuildDeviceStore(dir, testApp, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	up2, err := BuildDeviceStore(dir, testApp, "dev-2")
	if err != nil {
		t.Fatal(err)
	}
	ms1, err := ss.Merge(testApp, up1)
	if err != nil {
		t.Fatal(err)
	}
	if ms1.ChunksWritten == 0 || ms1.Snapshots != 1 {
		t.Fatalf("first merge wrote nothing: %+v", ms1)
	}
	ms2, err := ss.Merge(testApp, up2)
	if err != nil {
		t.Fatal(err)
	}
	// Device 2 shares the app-common pages (chunk-level dedup) and its boot
	// pages are already in the shard's table (skipped by address before any
	// chunk I/O); only its unique tail is new bytes.
	if ms2.ChunksReused < deviceAppPages {
		t.Fatalf("second merge reused %d chunks, want >= %d", ms2.ChunksReused, deviceAppPages)
	}
	if ms2.ChunksWritten != deviceUniquePags {
		t.Fatalf("second merge wrote %d chunks, want %d (the device-unique tail)", ms2.ChunksWritten, deviceUniquePags)
	}
	// Both snapshots live in one shard file and survive a scan.
	f, err := castore.Open(ss.ShardPath(testApp))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots()) != 2 {
		t.Fatalf("shard holds %d snapshots, want 2", len(f.Snapshots()))
	}
	for _, s := range f.Snapshots() {
		if !s.Complete {
			t.Fatal("merged snapshot incomplete")
		}
	}
	if len(f.Boot()) != deviceBootPages {
		t.Fatalf("boot table has %d pages, want %d", len(f.Boot()), deviceBootPages)
	}
	// Re-uploading an identical store must not grow the live set.
	if _, err := ss.Merge(testApp, up1); err != nil {
		t.Fatal(err)
	}
	g, _ := castore.Open(ss.ShardPath(testApp))
	if len(g.Snapshots()) != 2 {
		t.Fatalf("idempotent re-upload grew snapshots to %d", len(g.Snapshots()))
	}

	// A second app lands in a different shard with its own lock.
	if _, err := os.Stat(ss.ShardPath("SOR")); err == nil {
		t.Fatal("SOR shard exists before any SOR upload")
	}
	upB, err := BuildDeviceStore(dir, "SOR", "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Merge("SOR", upB); err != nil {
		t.Fatal(err)
	}
	if ss.ShardPath("SOR") == ss.ShardPath(testApp) {
		t.Fatal("apps share a shard file")
	}
}

func TestShardRepairObserved(t *testing.T) {
	dir := t.TempDir()
	sc := obs.New()
	ss, err := NewShardedStore(dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	up, err := BuildDeviceStore(dir, testApp, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Merge(testApp, up); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Repair(testApp); err != nil {
		t.Fatal(err)
	}
	if got := sc.Counter("castore.repairs").Value(); got != 1 {
		t.Fatalf("castore.repairs = %d after shard repair, want 1", got)
	}
}

func TestJobStoreStateMachineAndRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	js, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	j, created, err := js.Ensure(testApp, "classA")
	if err != nil || !created || j.State != JobPending {
		t.Fatalf("Ensure: %+v created=%v err=%v", j, created, err)
	}
	if _, created, _ := js.Ensure(testApp, "classA"); created {
		t.Fatal("Ensure created a duplicate")
	}
	if _, err := js.Transition(j.ID, JobRunning, nil); err != nil {
		t.Fatal(err)
	}
	// Another job finishes normally.
	j2, _, _ := js.Ensure(testApp, "classB")
	js.Transition(j2.ID, JobRunning, nil)
	js.Transition(j2.ID, JobDone, func(j *Job) { j.Resumed = 7 })
	js.Close()

	// Recovery: the killed "running" job demotes to pending, the done job
	// stays done with its fields.
	js2, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer js2.Close()
	got, ok := js2.Get(j.ID)
	if !ok || got.State != JobPending {
		t.Fatalf("running job recovered as %+v, want pending", got)
	}
	done, _ := js2.Get(j2.ID)
	if done.State != JobDone || done.Resumed != 7 {
		t.Fatalf("done job recovered as %+v", done)
	}
}

func TestJobStoreTornRecordRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	js, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	j, _, _ := js.Ensure(testApp, "classA")
	js.Transition(j.ID, JobDone, nil)
	js.Close()

	// Tear the log mid-append: a partial JSON line with no newline, exactly
	// what a crash during write leaves behind.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"FFT@classA","state":"fai`)
	f.Close()

	js2, err := OpenJobStore(path)
	if err != nil {
		t.Fatalf("torn log failed to open: %v", err)
	}
	defer js2.Close()
	got, ok := js2.Get(j.ID)
	if !ok || got.State != JobDone {
		t.Fatalf("torn record corrupted state: %+v, want done", got)
	}
	// The recovered store must still accept appends.
	if _, err := js2.Transition(j.ID, JobPending, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFileJournalTornTailDropsOneRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	fj, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for fp := uint64(1); fp <= 5; fp++ {
		fj.Record(fp, evalForTest(fp))
	}
	fj.Close()

	// Tear the last line in half.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	fj2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fj2.Close()
	if fj2.Prior() != 4 {
		t.Fatalf("torn journal loaded %d records, want 4", fj2.Prior())
	}
	if _, ok := fj2.Lookup(5); ok {
		t.Fatal("torn record served")
	}
	if ev, ok := fj2.Lookup(3); !ok || ev.MeanMs != evalForTest(3).MeanMs {
		t.Fatalf("intact record lost: %+v ok=%v", ev, ok)
	}
	// The re-run records the torn evaluation again.
	fj2.Record(5, evalForTest(5))
	if fj2.Len() != 5 {
		t.Fatalf("Len = %d", fj2.Len())
	}
}

// TestClientRetryBackoffGivesUp points the client at a server that always
// fails: the bounded retry must stop after exactly Attempts tries and say
// so precisely.
func TestClientRetryBackoffGivesUp(t *testing.T) {
	hits := 0
	srv := statusServer(func() int { hits++; return 503 })
	defer srv.Close()
	c := &Client{Base: srv.URL, Attempts: 3, Backoff: time.Millisecond}
	_, err := c.Status()
	if err == nil {
		t.Fatal("client succeeded against a 503 server")
	}
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("err = %v, want ErrGaveUp", err)
	}
	if hits != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") || !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("imprecise give-up error: %v", err)
	}
}

// TestClientDoesNotRetry4xx: a 4xx is an answer, not a transient failure.
func TestClientDoesNotRetry4xx(t *testing.T) {
	hits := 0
	srv := statusServer(func() int { hits++; return 404 })
	defer srv.Close()
	c := &Client{Base: srv.URL, Attempts: 5, Backoff: time.Millisecond}
	_, err := c.Artifact(testApp, "classA", "")
	if !errors.Is(err, ErrNotReady) {
		t.Fatalf("err = %v, want ErrNotReady", err)
	}
	if hits != 1 {
		t.Fatalf("client retried a 404 %d times", hits)
	}
}
