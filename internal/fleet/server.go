// The coordinator itself: HTTP handlers in front, a bounded search-worker
// pool behind a persistent job queue. Every mutation is crash-safe (job
// log appends sync; artifacts rename into place; journals checkpoint per
// evaluation), so the server's lifecycle discipline is simple: boot
// requeues whatever the log says is unfinished, drain interrupts searches
// at batch boundaries and lets the journal carry the work forward.

package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"replayopt/internal/apps"
	"replayopt/internal/core"
	"replayopt/internal/ga"
	"replayopt/internal/obs"
)

// maxUploadBytes bounds one capture upload (a device's store is a few MB of
// compressed pages; 64 MB is generous headroom, not a DoS invitation).
const maxUploadBytes = 64 << 20

// maxJobAttempts is how many times a failing search is retried before the
// job parks in state failed.
const maxJobAttempts = 3

// Config configures a coordinator.
type Config struct {
	// Dir roots all server state: shards/, artifacts/, journals/, jobs.jsonl.
	Dir string
	// Workers is the search worker count (min 1).
	Workers int
	// Scale sizes each job's search; zero value = DefaultScale.
	Scale SearchScale
	// Apps restricts the served app registry; empty = every registry app.
	Apps []string
	// Scope observes the server (nil disables observation).
	Scope *obs.Scope
}

// Server is one fleet coordinator.
type Server struct {
	cfg    Config
	sc     *obs.Scope
	shards *ShardedStore
	jobs   *JobStore
	cache  *ArtifactCache

	apps     map[string]*core.App
	imageFPs map[string]string

	queueMu  sync.Mutex
	queue    chan string
	draining atomic.Bool
	running  sync.WaitGroup
}

// NewServer builds a coordinator rooted at cfg.Dir, recovering job state
// from a previous life: pending and interrupted jobs are requeued, done
// jobs keep serving from the artifact cache.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Scale.Population == 0 {
		cfg.Scale = DefaultScale()
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "journals"), 0o755); err != nil {
		return nil, fmt.Errorf("fleet: state dir: %w", err)
	}
	shards, err := NewShardedStore(cfg.Dir, cfg.Scope)
	if err != nil {
		return nil, err
	}
	cache, err := NewArtifactCache(filepath.Join(cfg.Dir, "artifacts"))
	if err != nil {
		return nil, err
	}
	jobs, err := OpenJobStore(filepath.Join(cfg.Dir, "jobs.jsonl"))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg, sc: cfg.Scope, shards: shards, jobs: jobs, cache: cache,
		apps: map[string]*core.App{}, imageFPs: map[string]string{},
		queue: make(chan string, 4096),
	}
	names := cfg.Apps
	if len(names) == 0 {
		for _, spec := range apps.All() {
			names = append(names, spec.Name)
		}
	}
	for _, name := range names {
		spec, ok := apps.ByName(name)
		if !ok {
			return nil, fmt.Errorf("fleet: unknown app %q", name)
		}
		app, err := apps.Build(spec)
		if err != nil {
			return nil, err
		}
		fp, err := ImageFP(app)
		if err != nil {
			return nil, err
		}
		s.apps[name] = app
		s.imageFPs[name] = fp
	}
	// Requeue unfinished work from the previous life. OpenJobStore already
	// demoted interrupted "running" jobs to pending.
	for _, j := range jobs.All() {
		if j.State == JobPending {
			s.enqueue(j.ID)
		}
	}
	return s, nil
}

// Start launches the search workers.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.running.Add(1)
		go s.worker()
	}
}

// Drain stops the coordinator gracefully: new uploads still merge but no
// new search starts, in-flight searches are interrupted at their next batch
// boundary (their journals keep every finished evaluation), and Drain
// returns when the last worker has parked. Safe to call once.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.queueMu.Lock()
	close(s.queue)
	s.queueMu.Unlock()
	s.running.Wait()
	s.jobs.Close()
	s.shards.Close()
}

// Jobs exposes the job store (status handlers, tests).
func (s *Server) Jobs() *JobStore { return s.jobs }

// Shards exposes the sharded capture store.
func (s *Server) Shards() *ShardedStore { return s.shards }

// QueueDepth is the number of jobs waiting for a worker.
func (s *Server) QueueDepth() int { return len(s.queue) }

// enqueue adds a job ID to the work queue unless the server is draining
// (the job stays pending in the log; the next boot requeues it). The queue
// is sized far beyond the app-registry × device-class job universe, so a
// live server never drops: the send below cannot block for long, and a
// full queue would mean a misconfigured deployment, which the job log
// still protects — nothing is lost, only delayed to the next boot.
func (s *Server) enqueue(id string) {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	if s.draining.Load() {
		return
	}
	select {
	case s.queue <- id:
		s.sc.Gauge("fleet.queue_depth").Set(int64(len(s.queue)))
	default:
		// Queue saturated: leave the job pending on disk. It is picked up at
		// next boot; the status endpoint shows it as pending meanwhile.
		s.sc.Counter("fleet.queue_deferred").Add(1)
	}
}

func (s *Server) worker() {
	defer s.running.Done()
	for id := range s.queue {
		s.sc.Gauge("fleet.queue_depth").Set(int64(len(s.queue)))
		job, ok := s.jobs.Get(id)
		if !ok || job.State != JobPending {
			continue
		}
		s.runJob(job)
	}
}

func (s *Server) runJob(job Job) {
	app := s.apps[job.App]
	if app == nil {
		s.jobs.Transition(job.ID, JobFailed, func(j *Job) { j.Error = "app not in registry" })
		return
	}
	if _, err := s.jobs.Transition(job.ID, JobRunning, nil); err != nil {
		return
	}
	g := s.sc.Gauge("fleet.jobs_running")
	g.Add(1)
	defer g.Add(-1)

	sp := s.sc.Start("fleet.search", obs.A("job", job.ID))
	out, err := RunSearch(job, app, filepath.Join(s.cfg.Dir, "journals"), s.cfg.Scale,
		s.draining.Load, s.sc)
	switch {
	case errors.Is(err, ga.ErrInterrupted):
		// Drain: the journal holds every finished evaluation; park the job
		// pending so the next boot resumes it.
		s.jobs.Transition(job.ID, JobPending, nil)
		s.sc.Counter("fleet.searches_interrupted").Add(1)
		sp.End(obs.A("outcome", "interrupted"))
	case err != nil:
		s.sc.Counter("fleet.searches_failed").Add(1)
		sp.End(obs.A("outcome", "error"))
		s.jobs.Transition(job.ID, JobFailed, func(j *Job) {
			j.Attempts++
			j.Error = err.Error()
		})
		if job, ok := s.jobs.Get(job.ID); ok && job.Attempts < maxJobAttempts {
			s.jobs.Transition(job.ID, JobPending, nil)
			s.enqueue(job.ID)
		}
	default:
		art := ArtifactFromReport(job, s.imageFPs[job.App], out)
		if err := s.cache.Put(art); err != nil {
			sp.End(obs.A("outcome", "cache-error"))
			s.jobs.Transition(job.ID, JobFailed, func(j *Job) { j.Attempts++; j.Error = err.Error() })
			return
		}
		s.jobs.Transition(job.ID, JobDone, func(j *Job) {
			j.Error = ""
			j.Resumed = out.Resumed
		})
		s.sc.Counter("fleet.searches_done").Add(1)
		s.sc.Counter("fleet.search_resumed_evals").Add(int64(out.Resumed))
		sp.End(obs.A("outcome", "done"), obs.A("resumed", out.Resumed),
			obs.A("evaluations", out.Report.SearchStats.Evaluations))
	}
}

// Handler returns the coordinator's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/capture", s.handleUpload)
	mux.HandleFunc("GET /v1/artifact", s.handleArtifact)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{APIVersion: APIVersion, Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	sp := s.sc.Start("fleet.upload")
	defer sp.End()
	var req UploadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad upload: %v", err)
		return
	}
	if req.APIVersion > APIVersion {
		writeErr(w, http.StatusBadRequest, "api_version %d newer than server %d", req.APIVersion, APIVersion)
		return
	}
	if _, ok := s.apps[req.App]; !ok {
		writeErr(w, http.StatusNotFound, "unknown app %q", req.App)
		return
	}
	if req.DeviceClass == "" || len(req.Store) == 0 {
		writeErr(w, http.StatusBadRequest, "device_class and store are required")
		return
	}
	ms, err := s.shards.Merge(req.App, req.Store)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	job, created, err := s.jobs.Ensure(req.App, req.DeviceClass)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if created {
		s.enqueue(job.ID)
	}
	s.sc.Counter("fleet.uploads").Add(1)
	sp.Attr("app", req.App)
	writeJSON(w, http.StatusOK, UploadResponse{
		APIVersion: APIVersion, Shard: ms.Shard, Snapshots: ms.Snapshots,
		ChunksWritten: ms.ChunksWritten, ChunksReused: ms.ChunksReused,
		BytesReused: ms.BytesReused, RawWritten: ms.RawChunkBytesWritten,
		JobID: job.ID, JobState: job.State,
	})
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	sp := s.sc.Start("fleet.artifact")
	defer sp.End()
	app := r.URL.Query().Get("app")
	class := r.URL.Query().Get("class")
	fp, ok := s.imageFPs[app]
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown app %q", app)
		return
	}
	if want := r.URL.Query().Get("image_fp"); want != "" && want != fp {
		// The device runs a different code image than the server registry:
		// a cached lock would not apply. Refuse rather than approximate.
		s.sc.Counter("fleet.artifact_image_mismatch").Add(1)
		writeErr(w, http.StatusConflict, "image fingerprint mismatch: server %s, device %s", fp, want)
		return
	}
	art, drifts, err := s.cache.Get(app, fp, class)
	switch {
	case errors.Is(err, ErrArtifactNotFound):
		s.sc.Counter("fleet.artifact_misses").Add(1)
		state := "unknown"
		if j, ok := s.jobs.Get(JobID(app, class)); ok {
			state = j.State
		}
		sp.Attr("outcome", "miss")
		writeErr(w, http.StatusNotFound, "no artifact for (%s, %s): job %s", app, class, state)
	case errors.Is(err, ErrArtifactDrifted):
		// The lock-validation-on-fetch rule: a drifted artifact is refused
		// and its search re-enqueued against the current compiler.
		s.sc.Counter("fleet.artifact_refused").Add(1)
		sp.Attr("outcome", "refused")
		if _, ok := s.jobs.Get(JobID(app, class)); ok {
			if _, err := s.jobs.Transition(JobID(app, class), JobPending, nil); err == nil {
				s.enqueue(JobID(app, class))
			}
		}
		writeErr(w, http.StatusConflict, "artifact refused: %d static drift(s), first: [%s] %s",
			len(drifts), drifts[0].Kind, drifts[0].Detail)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		s.sc.Counter("fleet.artifact_hits").Add(1)
		sp.Attr("outcome", "hit")
		writeJSON(w, http.StatusOK, art)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	resp := StatusResponse{
		APIVersion: APIVersion,
		Draining:   s.draining.Load(),
		QueueDepth: len(s.queue),
		Workers:    s.cfg.Workers,
	}
	for _, j := range s.jobs.All() {
		resp.Jobs = append(resp.Jobs, StatusJob{
			ID: j.ID, App: j.App, DeviceClass: j.DeviceClass,
			State: j.State, Attempts: j.Attempts, Error: j.Error, Resumed: j.Resumed,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if reg := s.sc.Registry(); reg != nil {
		reg.WriteText(w)
		return
	}
	fmt.Fprintln(w, "# observation disabled")
}
