// Crash-safe job state. One search job exists per (app × device class);
// its state machine is
//
//	pending ──claim──▶ running ──finish──▶ done
//	   ▲                  │ │
//	   │   drain/crash    │ └──error──▶ failed ──retry──▶ pending
//	   └──────────────────┘
//
// Persistence is an append-only JSONL log: every transition appends the
// whole job record and syncs. Recovery replays the log — last record per
// job wins — and tolerates a torn final line (a coordinator killed
// mid-append) by dropping it, exactly the castore torn-tail discipline.
// Jobs recovered in state "running" are demoted to pending: the search
// they were running checkpoints its evaluations in the journal, so the
// re-run resumes instead of repeating work.

package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Job states.
const (
	JobPending = "pending"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job is one (app, device class) search.
type Job struct {
	ID          string `json:"id"`
	App         string `json:"app"`
	DeviceClass string `json:"device_class"`
	State       string `json:"state"`
	Attempts    int    `json:"attempts"`
	Error       string `json:"error,omitempty"`
	// Resumed counts journal-served evaluations on the last run — >0 means
	// a crash or drain was recovered without repeating work.
	Resumed int `json:"resumed,omitempty"`
}

// JobStore persists jobs to an append-only JSONL file.
type JobStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
	jobs map[string]*Job
}

// OpenJobStore loads (or creates) the job log at path, replaying every
// intact record and demoting interrupted "running" jobs to pending.
func OpenJobStore(path string) (*JobStore, error) {
	js := &JobStore{path: path, jobs: map[string]*Job{}}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("fleet: job log: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var j Job
		if err := json.Unmarshal(line, &j); err != nil || j.ID == "" {
			// Torn or foreign record: a crash mid-append costs exactly this
			// line. Every earlier record is intact (appends are ordered), so
			// dropping it recovers the newest consistent state.
			continue
		}
		cp := j
		js.jobs[j.ID] = &cp
	}
	for _, j := range js.jobs {
		if j.State == JobRunning {
			j.State = JobPending
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: job log: %w", err)
	}
	js.f = f
	return js, nil
}

// Close closes the log file.
func (js *JobStore) Close() error {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.f.Close()
}

// Get returns a copy of the job, if known.
func (js *JobStore) Get(id string) (Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// All returns copies of every job, sorted by ID for stable output.
func (js *JobStore) All() []Job {
	js.mu.Lock()
	defer js.mu.Unlock()
	out := make([]Job, 0, len(js.jobs))
	//detlint:allow map-range — sorted immediately below
	for _, j := range js.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Ensure registers the job for (app, deviceClass) if it does not exist yet,
// persisting the new pending record. It returns the job's current state and
// whether this call created it (the caller then owns enqueueing it).
func (js *JobStore) Ensure(app, deviceClass string) (Job, bool, error) {
	id := JobID(app, deviceClass)
	js.mu.Lock()
	defer js.mu.Unlock()
	if j, ok := js.jobs[id]; ok {
		return *j, false, nil
	}
	j := &Job{ID: id, App: app, DeviceClass: deviceClass, State: JobPending}
	if err := js.append(j); err != nil {
		return Job{}, false, err
	}
	js.jobs[id] = j
	return *j, true, nil
}

// Transition moves a job to state, applying mut (may be nil) under the
// lock, and persists the record before returning.
func (js *JobStore) Transition(id, state string, mut func(*Job)) (Job, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("fleet: unknown job %q", id)
	}
	j.State = state
	if mut != nil {
		mut(j)
	}
	if err := js.append(j); err != nil {
		return Job{}, err
	}
	return *j, nil
}

// append writes one record and syncs; called with the lock held. The sync
// is what makes a transition crash-safe: once Transition returns, a kill at
// any instant loses at most a later, unacknowledged transition.
func (js *JobStore) append(j *Job) error {
	rec, err := json.Marshal(j)
	if err != nil {
		return err
	}
	rec = append(rec, '\n')
	if _, err := js.f.Write(rec); err != nil {
		return fmt.Errorf("fleet: job log append: %w", err)
	}
	return js.f.Sync()
}
