// One job's search: the full Fig. 6 pipeline (core.Optimize) at a
// coordinator-chosen scale, checkpointed through a FileJournal and
// interruptible at evaluation-batch boundaries for graceful drain. The
// seed is derived from (app, device class), so the same job always runs
// the same search — the property that makes the journal a resume point and
// the artifact's trace hash reproducible.

package fleet

import (
	"fmt"
	"path/filepath"

	"replayopt/internal/core"
	"replayopt/internal/ga"
	"replayopt/internal/obs"
)

// SearchScale sizes a coordinator-run search. The zero value is replaced by
// DefaultScale.
type SearchScale struct {
	Population      int
	Generations     int
	HillClimbBudget int
	OnlineRuns      int
	Parallelism     int
}

// DefaultScale is deliberately small: a fleet coordinator amortizes one
// search across thousands of devices, and CI boots real coordinators, so
// per-job wall clock matters more than squeezing the last percent out of
// each winner. Operators raise it via fleetd flags for production sweeps.
func DefaultScale() SearchScale {
	return SearchScale{Population: 8, Generations: 3, HillClimbBudget: 6, OnlineRuns: 3, Parallelism: 2}
}

// SearchOutcome is what a finished (or interrupted) job search produced.
type SearchOutcome struct {
	Report *core.Report
	// Resumed is the number of evaluations served from the journal — work a
	// previous, killed run of this job already paid for.
	Resumed int
}

// RunSearch executes the job's search with checkpointing. interrupt (may be
// nil) is polled at batch boundaries; when it fires the search unwinds and
// RunSearch returns ga.ErrInterrupted with everything finished so far safely
// in the journal at journalDir/<jobID>.jsonl.
func RunSearch(job Job, app *core.App, journalDir string, scale SearchScale,
	interrupt func() bool, sc *obs.Scope) (out *SearchOutcome, err error) {
	if scale.Population == 0 {
		scale = DefaultScale()
	}
	fj, err := OpenJournal(filepath.Join(journalDir, job.ID+".jsonl"))
	if err != nil {
		return nil, err
	}
	defer fj.Close()

	opts := core.DefaultOptions()
	opts.Seed = ClassSeed(job.App, job.DeviceClass)
	opts.GA.Population = scale.Population
	opts.GA.Generations = scale.Generations
	opts.GA.HillClimbBudget = scale.HillClimbBudget
	opts.GA.Parallelism = scale.Parallelism
	opts.OnlineRuns = scale.OnlineRuns
	opts.GA.Journal = fj
	opts.GA.Interrupt = interrupt
	opts.Obs = sc

	// core.Optimize does not know about interruption; the sentinel unwind
	// from the batch boundary is converted here, at the first frame that can
	// report it as a job-level outcome.
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, ga.RecoverInterrupt(r)
		}
	}()
	rep, err := core.New(opts).Optimize(app)
	if err != nil {
		return nil, fmt.Errorf("fleet: search %s: %w", job.ID, err)
	}
	return &SearchOutcome{Report: rep, Resumed: fj.Prior()}, nil
}

// ArtifactFromReport shapes a finished search into the cached artifact.
func ArtifactFromReport(job Job, imageFP string, out *SearchOutcome) *ArtifactResponse {
	rep := out.Report
	a := &ArtifactResponse{
		APIVersion:    APIVersion,
		App:           job.App,
		DeviceClass:   job.DeviceClass,
		ImageFP:       imageFP,
		TraceHash:     TraceHash(rep.Search),
		Evaluations:   rep.SearchStats.Evaluations,
		MeanMs:        rep.GARegionMs,
		AndroidMeanMs: rep.AndroidRegionMs,
		Speedup:       rep.RegionSpeedupGA,
		KeptBaseline:  rep.KeptBaseline,
	}
	if !rep.KeptBaseline {
		a.Lock = rep.Lock
	}
	return a
}
