package fleet

import (
	"errors"
	"path/filepath"
	"testing"

	"replayopt/internal/apps"
	"replayopt/internal/core"
	"replayopt/internal/ga"
)

// TestKillAndResumeByteIdenticalTrace is the coordinator's headline fault
// property: kill a search mid-flight, resume it from the journal, and the
// final decision trace is byte-identical to a never-interrupted run — the
// resumed search re-ran only the evaluations the dead run never finished.
func TestKillAndResumeByteIdenticalTrace(t *testing.T) {
	spec, ok := apps.ByName(testApp)
	if !ok {
		t.Fatal("test app missing from registry")
	}
	app, err := apps.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{ID: JobID(testApp, "classA"), App: testApp, DeviceClass: "classA"}

	// Reference: uninterrupted run in its own journal dir.
	refDir := t.TempDir()
	ref, err := RunSearch(job, app, refDir, testScale(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	refTrace := ref.Report.Search.DecisionTrace()

	// Killed run: interrupt after two evaluation batches.
	dir := t.TempDir()
	batches := 0
	_, err = RunSearch(job, app, dir, testScale(), func() bool {
		batches++
		return batches > 2
	}, nil)
	if !errors.Is(err, ga.ErrInterrupted) {
		t.Fatalf("killed run: err = %v, want ErrInterrupted", err)
	}
	fj, err := OpenJournal(filepath.Join(dir, job.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	finished := fj.Prior()
	fj.Close()
	if finished == 0 {
		t.Fatal("killed run journaled nothing")
	}
	if finished >= ref.Report.SearchStats.Evaluations {
		t.Fatalf("killed run finished all %d evaluations; interrupt never bit", finished)
	}

	// Resume in the same dir: byte-identical decisions, prefix from disk.
	res, err := RunSearch(job, app, dir, testScale(), nil, nil)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := res.Report.Search.DecisionTrace(); got != refTrace {
		t.Fatalf("resumed decision trace diverged from the uninterrupted reference\nwant %d bytes, got %d bytes",
			len(refTrace), len(got))
	}
	if res.Resumed != finished {
		t.Fatalf("resume loaded %d journal entries, killed run persisted %d", res.Resumed, finished)
	}
	if TraceHash(res.Report.Search) != TraceHash(ref.Report.Search) {
		t.Fatal("trace hashes differ")
	}
	// The rest of the report agrees too — the artifact built from a resumed
	// search is indistinguishable from one built without the crash.
	a := ArtifactFromReport(job, "fp", res)
	b := ArtifactFromReport(job, "fp", ref)
	if a.TraceHash != b.TraceHash || a.Evaluations != b.Evaluations ||
		a.MeanMs != b.MeanMs || a.KeptBaseline != b.KeptBaseline {
		t.Fatalf("artifacts diverged:\nresumed %+v\nref     %+v", a, b)
	}
}

// TestRunSearchSeedsDifferByClass: different device classes genuinely run
// different searches.
func TestRunSearchSeedsDifferByClass(t *testing.T) {
	if ClassSeed(testApp, "classA") == ClassSeed(testApp, "classB") {
		t.Fatal("device classes share a seed")
	}
	if ClassSeed(testApp, "classA") != ClassSeed(testApp, "classA") {
		t.Fatal("seed not stable")
	}
	if ClassSeed(testApp, "classA") < 0 || ClassSeed("SOR", "classB") < 0 {
		t.Fatal("seed negative")
	}
}

// TestInstallLockedAppliesFleetArtifact closes the loop at the device: the
// artifact a coordinator serves installs through core.InstallLocked with no
// drift and a positive measured speedup.
func TestInstallLockedAppliesFleetArtifact(t *testing.T) {
	spec, _ := apps.ByName(testApp)
	app, err := apps.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{ID: JobID(testApp, "classA"), App: testApp, DeviceClass: "classA"}
	out, err := RunSearch(job, app, t.TempDir(), testScale(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	art := ArtifactFromReport(job, "fp", out)
	if art.KeptBaseline {
		t.Skip("search kept the baseline; nothing to install")
	}

	// A "device": fresh app build, same options the search used for its
	// baselines so the replay environment matches.
	devApp, err := apps.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Seed = ClassSeed(testApp, "classA")
	opts.OnlineRuns = testScale().OnlineRuns
	ir, err := core.New(opts).InstallLocked(devApp, art.Lock)
	if err != nil {
		t.Fatalf("InstallLocked on fleet artifact: %v", err)
	}
	if len(ir.StaticDrift) != 0 {
		t.Fatalf("fleet artifact drifted at install: %+v", ir.StaticDrift)
	}
	if ir.Eval.Outcome.Failed() {
		t.Fatalf("fleet artifact failed device replay: %s", ir.Eval.Outcome)
	}
	if ir.Speedup() <= 0 {
		t.Fatalf("speedup %v", ir.Speedup())
	}
}
