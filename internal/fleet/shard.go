// Sharded capture intake. Each app's uploads merge into one shard file —
// a plain castore — under <dir>/shards/<ShardID>.cas. Sharding by app
// fingerprint means tenants never share a lock: a thousand devices
// uploading app A contend only with each other, never with app B. Within a
// shard the merge is chunk-level, so the cross-device dedup of DESIGN.md
// §10 extends across the whole fleet: boot-common and app-common pages are
// stored once no matter how many devices upload them.
//
// Each shard keeps its castore writer open for the store's lifetime.
// Opening a castore writer rescans the whole file to rebuild the dedup
// index, so an open-per-merge shard costs O(shard size) per upload —
// quadratic over a fleet intake. The persistent writer pays that scan once
// (on the first merge after boot) and every later merge is O(upload):
// PutIndex + Sync after each merge keeps the commit durable and visible to
// readers without a close.

package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"replayopt/internal/capture/castore"
	"replayopt/internal/obs"
)

// MergeStats accounts one upload merged into a shard.
type MergeStats struct {
	Shard     string
	Snapshots int
	castore.SaveStats
}

// ShardedStore is the multi-tenant capture store: per-app shard files with
// per-shard locking and per-shard long-lived writers.
type ShardedStore struct {
	dir string
	sc  *obs.Scope

	mu     sync.Mutex // guards the shard map, never held during I/O
	shards map[string]*shard
}

type shard struct {
	mu   sync.Mutex // serializes appends to this shard's file
	path string

	// Writer state carried across merges (guarded by mu). digests is the
	// live snapshot set committed by the last index; bootRefs/bootSeen the
	// union boot page table. Nil w means the writer opens lazily on the
	// next merge (first use, or after a Repair reset it).
	w        *castore.Writer
	digests  []castore.Key
	have     map[castore.Key]bool
	bootRefs []castore.PageRef
	bootSeen map[uint64]bool
}

// open (re)opens the shard writer and loads the carried index state. Caller
// holds sh.mu.
func (sh *shard) open() error {
	w, err := castore.OpenWriter(sh.path)
	if err != nil {
		return fmt.Errorf("fleet: open shard: %w", err)
	}
	sh.w = w
	sh.digests = append([]castore.Key(nil), w.PriorManifests()...)
	sh.have = make(map[castore.Key]bool, len(sh.digests))
	for _, d := range sh.digests {
		sh.have[d] = true
	}
	sh.bootRefs = append([]castore.PageRef(nil), w.PriorBoot()...)
	sh.bootSeen = make(map[uint64]bool, len(sh.bootRefs))
	for _, ref := range sh.bootRefs {
		sh.bootSeen[ref.Addr] = true
	}
	return nil
}

// closeLocked closes the shard writer and drops the carried state. Caller
// holds sh.mu.
func (sh *shard) closeLocked() error {
	if sh.w == nil {
		return nil
	}
	err := sh.w.Close()
	sh.w = nil
	sh.digests, sh.have = nil, nil
	sh.bootRefs, sh.bootSeen = nil, nil
	return err
}

// NewShardedStore roots a sharded store at dir (created if needed).
func NewShardedStore(dir string, sc *obs.Scope) (*ShardedStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "shards"), 0o755); err != nil {
		return nil, fmt.Errorf("fleet: shard dir: %w", err)
	}
	return &ShardedStore{dir: dir, sc: sc, shards: map[string]*shard{}}, nil
}

func (s *ShardedStore) shardFor(app string) *shard {
	id := ShardID(app)
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[id]
	if !ok {
		sh = &shard{path: filepath.Join(s.dir, "shards", id+".cas")}
		s.shards[id] = sh
	}
	return sh
}

// ShardPath returns the on-disk file backing an app's shard.
func (s *ShardedStore) ShardPath(app string) string { return s.shardFor(app).path }

// Close closes every open shard writer. The store is unusable afterwards;
// call on coordinator drain.
func (s *ShardedStore) Close() error {
	s.mu.Lock()
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh) //detlint:allow map-range
	}
	s.mu.Unlock()
	var first error
	for _, sh := range shards {
		sh.mu.Lock()
		if err := sh.closeLocked(); err != nil && first == nil {
			first = err
		}
		sh.mu.Unlock()
	}
	return first
}

// Merge folds an uploaded store (raw castore bytes) into the app's shard:
// every complete snapshot is re-chunked into the shard (duplicate chunks
// and manifests dedup against everything the shard already holds), boot
// pages union in, and prior snapshots are carried forward into the new
// commit index. Incomplete snapshots in the upload are skipped, not fatal —
// a device that tore its own store still contributes what survived.
func (s *ShardedStore) Merge(app string, store []byte) (MergeStats, error) {
	sh := s.shardFor(app)
	var ms MergeStats
	ms.Shard = ShardID(app)

	sp := s.sc.Start("fleet.merge", obs.A("app", app), obs.A("shard", ms.Shard),
		obs.A("upload_bytes", len(store)))
	defer func() { sp.End(obs.A("snapshots", ms.Snapshots)) }()

	// Land the upload in a scratch file so castore's tolerant scanner can
	// index it; damaged uploads surface here, before the shard is touched.
	tmp, err := os.CreateTemp(s.dir, "upload-*.cas")
	if err != nil {
		return ms, fmt.Errorf("fleet: upload scratch: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(store); err != nil {
		tmp.Close()
		return ms, fmt.Errorf("fleet: upload scratch: %w", err)
	}
	tmp.Close()
	up, err := castore.Open(tmp.Name())
	if err != nil {
		return ms, fmt.Errorf("fleet: upload not a capture store: %w", err)
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.w == nil {
		if err := sh.open(); err != nil {
			return ms, err
		}
	}
	w := sh.w
	// A failed merge leaves the shard file with appended-but-uncommitted
	// records; dropping the writer forces a rescan (and torn-tail cleanup)
	// before the next merge, so the carried in-memory index never drifts
	// from the commit on disk.
	fail := func(err error) (MergeStats, error) {
		sh.closeLocked()
		return ms, err
	}
	for _, snap := range up.Snapshots() {
		if !snap.Complete {
			continue
		}
		refs := make([]castore.PageRef, 0, len(snap.Pages))
		for _, ref := range snap.Pages {
			data, err := up.ReadChunk(ref.Key)
			if err != nil {
				return fail(fmt.Errorf("fleet: upload chunk: %w", err))
			}
			k, _, err := w.PutChunk(data)
			if err != nil {
				return fail(err)
			}
			refs = append(refs, castore.PageRef{Addr: ref.Addr, Key: k})
		}
		// A manifest the shard already holds dedups, so re-uploads don't
		// multiply the live snapshot set.
		d, _, err := w.PutManifest(snap.Meta, refs)
		if err != nil {
			return fail(err)
		}
		if !sh.have[d] {
			sh.have[d] = true
			sh.digests = append(sh.digests, d)
		}
		ms.Snapshots++
	}
	// Union the boot page table: first writer for an address wins (boot
	// pages are content-stable per app, so later devices only confirm it).
	for _, ref := range up.Boot() {
		if sh.bootSeen[ref.Addr] {
			continue
		}
		data, err := up.ReadChunk(ref.Key)
		if err != nil {
			continue // damaged boot page: the shard keeps its own table
		}
		k, _, err := w.PutChunk(data)
		if err != nil {
			return fail(err)
		}
		sh.bootRefs = append(sh.bootRefs, castore.PageRef{Addr: ref.Addr, Key: k})
		sh.bootSeen[ref.Addr] = true
	}
	if err := w.PutIndex(sh.digests, sh.bootRefs); err != nil {
		return fail(err)
	}
	if err := w.Sync(); err != nil {
		return fail(err)
	}
	ms.SaveStats = w.TakeStats()
	if s.sc != nil {
		s.sc.Counter("fleet.uploads_merged").Add(1)
		s.sc.Counter("fleet.upload_chunks_written").Add(int64(ms.ChunksWritten))
		s.sc.Counter("fleet.upload_chunks_reused").Add(int64(ms.ChunksReused))
		s.sc.Counter("fleet.upload_bytes_reused").Add(ms.BytesReused)
		s.sc.Counter("fleet.upload_raw_written").Add(ms.RawChunkBytesWritten)
	}
	return ms, nil
}

// Repair runs castore.Repair on an app's shard under the shard lock — the
// fleet-side recovery path for a shard damaged on disk. The open writer is
// closed first (Repair rewrites the file) and reopens lazily on the next
// merge. The server's scope rides in, so repairs show in /v1/metrics.
func (s *ShardedStore) Repair(app string) (castore.RepairStats, error) {
	sh := s.shardFor(app)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.closeLocked(); err != nil {
		return castore.RepairStats{}, err
	}
	return castore.Repair(sh.path, s.sc)
}
