// File-backed search checkpoints. A FileJournal implements ga.Journal over
// an append-only JSONL file: one line per finished evaluation, synced as it
// lands. Because the GA's decisions are a pure function of (seed,
// evaluation results) — the §3.6/§3.7 determinism contract — replaying the
// journal into a fresh search with the same seed reproduces the killed
// search's decision prefix byte for byte and spends compile/replay time
// only on work the dead coordinator never finished.

package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"replayopt/internal/ga"
)

// journalRec is one persisted evaluation, keyed by configuration
// fingerprint (the memo-cache key).
type journalRec struct {
	FP         uint64    `json:"fp"`
	Outcome    uint8     `json:"outcome"`
	TimesMs    []float64 `json:"times_ms,omitempty"`
	MeanMs     float64   `json:"mean_ms"`
	SizeBytes  int       `json:"size_bytes"`
	BinaryHash uint64    `json:"binary_hash"`
}

// FileJournal is a crash-safe ga.Journal. Lookup is safe from concurrent
// evaluation workers; Record is called only from the search goroutine (the
// ga.Journal contract) but is locked anyway so misuse degrades to slow, not
// corrupt.
type FileJournal struct {
	mu    sync.RWMutex
	f     *os.File
	evs   map[uint64]ga.Evaluation
	prior int
}

// OpenJournal loads the journal at path (creating it when absent),
// tolerating a torn final line the way every append-only log in this
// repo does: the torn record is dropped, costing one evaluation re-run.
func OpenJournal(path string) (*FileJournal, error) {
	fj := &FileJournal{evs: map[uint64]ga.Evaluation{}}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r journalRec
		if err := json.Unmarshal(line, &r); err != nil {
			continue // torn tail
		}
		fj.evs[r.FP] = ga.Evaluation{
			Outcome: ga.Outcome(r.Outcome), TimesMs: r.TimesMs, MeanMs: r.MeanMs,
			SizeBytes: r.SizeBytes, BinaryHash: r.BinaryHash,
		}
	}
	fj.prior = len(fj.evs)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	fj.f = f
	return fj, nil
}

// Prior is the number of evaluations loaded from disk — the work a resumed
// search will not repeat.
func (fj *FileJournal) Prior() int { return fj.prior }

// Len is the total number of journaled evaluations (loaded + recorded).
func (fj *FileJournal) Len() int {
	fj.mu.RLock()
	defer fj.mu.RUnlock()
	return len(fj.evs)
}

// Lookup implements ga.Journal.
func (fj *FileJournal) Lookup(fp uint64) (ga.Evaluation, bool) {
	fj.mu.RLock()
	defer fj.mu.RUnlock()
	ev, ok := fj.evs[fp]
	return ev, ok
}

// Record implements ga.Journal: append, sync, remember. A fingerprint the
// journal already holds (the replayed prefix of a resumed search) is not
// re-appended. Write errors are swallowed by design — the ga.Journal
// contract says a search never fails on a journal write; it only loses
// resumability for the affected entries.
func (fj *FileJournal) Record(fp uint64, ev ga.Evaluation) {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	if _, ok := fj.evs[fp]; ok {
		return
	}
	fj.evs[fp] = ev
	rec, err := json.Marshal(journalRec{
		FP: fp, Outcome: uint8(ev.Outcome), TimesMs: ev.TimesMs, MeanMs: ev.MeanMs,
		SizeBytes: ev.SizeBytes, BinaryHash: ev.BinaryHash,
	})
	if err != nil {
		return
	}
	rec = append(rec, '\n')
	if _, err := fj.f.Write(rec); err != nil {
		return
	}
	fj.f.Sync()
}

// Close closes the journal file.
func (fj *FileJournal) Close() error { return fj.f.Close() }
