// Synthetic devices for load generation. A simulated device produces a
// capture store with the statistical shape of a real one (DESIGN.md §10,
// Fig. 11): boot-common pages identical across every device, app-common
// pages identical across devices running the same app, and a small
// device-unique tail (its own heap state). That shape is what makes the
// fleet's chunk-level shard merge worth measuring — a thousand uploads of
// the same app should cost roughly one store plus a thousand tails.

package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"replayopt/internal/capture/castore"
)

const (
	devicePageBytes  = 4096
	deviceBootPages  = 4
	deviceAppPages   = 8
	deviceUniquePags = 2
)

// synthPage fills one deterministic page from a label: pseudo-random enough
// that compression does not collapse it, deterministic so every device
// agrees on shared content.
func synthPage(label string) []byte {
	h := fnv.New64a()
	h.Write([]byte(label))
	state := h.Sum64()
	page := make([]byte, devicePageBytes)
	for off := 0; off < devicePageBytes; off += 8 {
		state = state*6364136223846793005 + 1442695040888963407
		binary.LittleEndian.PutUint64(page[off:], state)
	}
	return page
}

// BuildDeviceStore writes the synthetic capture store one device would
// upload for app and returns its raw bytes. scratchDir holds the transient
// file (castore writers are file-backed); it is removed before returning.
func BuildDeviceStore(scratchDir, app, deviceID string) ([]byte, error) {
	path := filepath.Join(scratchDir, fmt.Sprintf("dev-%s-%s.cas", ShardID(app)[:8], deviceID))
	w, err := castore.OpenWriter(path)
	if err != nil {
		return nil, err
	}
	defer os.Remove(path)
	fail := func(err error) ([]byte, error) {
		w.Close()
		return nil, err
	}
	var pages []castore.PageRef
	addr := uint64(0x10000)
	put := func(label string) error {
		k, _, err := w.PutChunk(synthPage(label))
		if err != nil {
			return err
		}
		pages = append(pages, castore.PageRef{Addr: addr, Key: k})
		addr += devicePageBytes
		return nil
	}
	// App-common pages: every device running this app captures these.
	for i := 0; i < deviceAppPages; i++ {
		if err := put(fmt.Sprintf("app/%s/%d", app, i)); err != nil {
			return fail(err)
		}
	}
	// Device-unique tail: this device's own heap state.
	for i := 0; i < deviceUniquePags; i++ {
		if err := put(fmt.Sprintf("dev/%s/%s/%d", app, deviceID, i)); err != nil {
			return fail(err)
		}
	}
	meta := []byte(fmt.Sprintf(`{"app":%q,"device":%q}`, app, deviceID))
	d, _, err := w.PutManifest(meta, pages)
	if err != nil {
		return fail(err)
	}
	// Boot-common pages: identical across all devices and all apps.
	var boot []castore.PageRef
	bootAddr := uint64(0x1000)
	for i := 0; i < deviceBootPages; i++ {
		k, _, err := w.PutChunk(synthPage(fmt.Sprintf("boot/%d", i)))
		if err != nil {
			return fail(err)
		}
		boot = append(boot, castore.PageRef{Addr: bootAddr, Key: k})
		bootAddr += devicePageBytes
	}
	if err := w.PutIndex([]castore.Key{d}, boot); err != nil {
		return fail(err)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}
