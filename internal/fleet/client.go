// The device side of the wire: a small HTTP client with request timeouts
// and bounded retry. Transport failures and 5xx responses retry with
// exponential backoff; 4xx responses are the server saying no and are never
// retried. When the budget is exhausted the client gives up with an error
// that says exactly what it tried — attempts, last status, last error — so
// an operator reading one log line knows whether to blame the network or
// the coordinator.

package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// ErrGaveUp wraps every client error that exhausted its retry budget.
var ErrGaveUp = errors.New("fleet: gave up")

// ErrNotReady marks an artifact fetch whose search has not finished: the
// caller polls, it does not retry-with-backoff (the 404 is an answer, not
// a failure).
var ErrNotReady = errors.New("fleet: artifact not ready")

// ErrRefused marks an artifact fetch the server refused (drifted lock or
// image mismatch): retrying cannot help until a re-search finishes.
var ErrRefused = errors.New("fleet: artifact refused")

// Client talks to one coordinator.
type Client struct {
	// Base is the coordinator root, e.g. "http://127.0.0.1:8347".
	Base string
	// HTTP is the underlying client; nil uses a 30 s-timeout default.
	HTTP *http.Client
	// Attempts bounds tries per request (min 1). Zero means 4.
	Attempts int
	// Backoff is the first retry delay, doubling per retry. Zero means
	// 50 ms.
	Backoff time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return 4
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

// do runs one request with the retry budget. The request body is re-built
// per attempt from body (may be nil for GET).
func (c *Client) do(method, path string, body []byte, out any) error {
	var lastErr error
	lastStatus := 0
	delay := c.backoff()
	attempts := c.attempts()
	for try := 1; try <= attempts; try++ {
		if try > 1 {
			time.Sleep(delay)
			delay *= 2
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.Base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxUploadBytes))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastStatus = resp.StatusCode
			lastErr = fmt.Errorf("server error: %s", firstLine(data))
			continue
		}
		if resp.StatusCode >= 400 {
			var e ErrorResponse
			msg := firstLine(data)
			if json.Unmarshal(data, &e) == nil && e.Error != "" {
				msg = e.Error
			}
			switch resp.StatusCode {
			case http.StatusNotFound:
				return fmt.Errorf("%w: %s", ErrNotReady, msg)
			case http.StatusConflict:
				return fmt.Errorf("%w: %s", ErrRefused, msg)
			}
			return fmt.Errorf("fleet: %s %s: HTTP %d: %s", method, path, resp.StatusCode, msg)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("fleet: %s %s: bad response: %w", method, path, err)
			}
		}
		return nil
	}
	if lastStatus != 0 {
		return fmt.Errorf("%w: %s %s after %d attempts, last: HTTP %d, %v",
			ErrGaveUp, method, path, attempts, lastStatus, lastErr)
	}
	return fmt.Errorf("%w: %s %s after %d attempts, last: %v",
		ErrGaveUp, method, path, attempts, lastErr)
}

func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	if len(data) > 200 {
		data = data[:200]
	}
	return string(data)
}

// Upload POSTs one capture store.
func (c *Client) Upload(req UploadRequest) (*UploadResponse, error) {
	req.APIVersion = APIVersion
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp UploadResponse
	if err := c.do(http.MethodPost, "/v1/capture", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Artifact fetches the finished winner for (app, deviceClass). imageFP may
// be empty (the server then serves whatever matches its own registry);
// devices that know their image fingerprint send it so a version-skewed
// fetch is refused instead of mis-served. A pending search returns
// ErrNotReady; a drift refusal returns ErrRefused.
func (c *Client) Artifact(app, deviceClass, imageFP string) (*ArtifactResponse, error) {
	q := url.Values{"app": {app}, "class": {deviceClass}}
	if imageFP != "" {
		q.Set("image_fp", imageFP)
	}
	var resp ArtifactResponse
	if err := c.do(http.MethodGet, "/v1/artifact?"+q.Encode(), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status fetches the coordinator summary.
func (c *Client) Status() (*StatusResponse, error) {
	var resp StatusResponse
	if err := c.do(http.MethodGet, "/v1/status", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
