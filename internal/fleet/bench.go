// The BENCH_fleet.json artifact: what a fleetload sweep measured against a
// coordinator. Emitted by cmd/fleetload, schema-checked by cmd/benchlint's
// Fleet validator, regression-gated in CI on cache-hit ratio and uploads/sec.

package fleet

// BenchSchemaVersion versions BENCH_fleet.json. Bump on any field change
// (the CONTRIBUTING.md artifact-versioning rule).
const BenchSchemaVersion = 1

// BenchSweepRow is one concurrency step of the saturation sweep: offered
// load (concurrent uploading devices) vs achieved throughput. Reading the
// knee — the first row where uploads/sec stops scaling with concurrency —
// is how an operator sizes a coordinator (EXPERIMENTS.md).
type BenchSweepRow struct {
	Concurrency   int     `json:"concurrency"`
	Uploads       int     `json:"uploads"`
	UploadsPerSec float64 `json:"uploads_per_sec"`
}

// Bench is the BENCH_fleet.json document.
type Bench struct {
	SchemaVersion int    `json:"schema_version"`
	Benchmark     string `json:"benchmark"` // always "Fleet"

	Devices       int `json:"devices"`
	Apps          int `json:"apps"`
	DeviceClasses int `json:"device_classes"`
	Workers       int `json:"workers"`

	// Upload-side results.
	Uploads       int     `json:"uploads"`
	UploadsPerSec float64 `json:"uploads_per_sec"`
	UploadBytes   int64   `json:"upload_bytes"`
	// DedupFactor is raw referenced bytes over raw bytes actually written
	// across every merge: the fleet-scale Fig. 11 dedup quotient. With N
	// devices sharing an app's pages it approaches N for the shared set.
	DedupFactor float64 `json:"dedup_factor"`

	// Search-side results.
	SearchesRun   int     `json:"searches_run"`
	SearchesPerHr float64 `json:"searches_per_hour"`
	ResumedEvals  int     `json:"resumed_evals"`
	DroppedJobs   int     `json:"dropped_jobs"`
	FailedJobs    int     `json:"failed_jobs"`

	// Artifact-side results.
	ArtifactRequests int     `json:"artifact_requests"`
	ArtifactHits     int     `json:"artifact_hits"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`

	Sweep  []BenchSweepRow `json:"sweep"`
	WallMs float64         `json:"wall_ms"`
}
