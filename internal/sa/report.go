package sa

// Machine-readable reporting for cmd/replaylint: per-method verdict rows,
// coverage totals, and witness chains for every reachable non-replayable
// method, plus a hand-rolled structural validator for the JSON encoding so
// CI can assert the schema without a JSON-Schema dependency.

import (
	"encoding/json"
	"fmt"

	"replayopt/internal/dex"
)

// ReportSchemaVersion is bumped whenever the JSON layout changes shape.
const ReportSchemaVersion = 1

// Report is the replaylint output for one program.
type Report struct {
	SchemaVersion int             `json:"schema_version"`
	App           string          `json:"app"`
	Methods       []MethodReport  `json:"methods"`
	Coverage      Coverage        `json:"coverage"`
	Witnesses     []WitnessReport `json:"witnesses"`
}

// MethodReport is one per-method verdict row.
type MethodReport struct {
	Name string `json:"name"`
	// Effect is the interprocedural summary, Local the method's own
	// instructions only.
	Effect     string   `json:"effect"`
	Local      string   `json:"local_effect"`
	Class      string   `json:"class"`
	Hazards    []string `json:"hazards"`
	Replayable bool     `json:"replayable"`
	// Reachable under the RTA call graph from the program entry.
	Reachable bool `json:"reachable"`
}

// Coverage aggregates the verdicts.
type Coverage struct {
	Methods             int     `json:"methods"`
	Replayable          int     `json:"replayable"`
	ReplayablePct       float64 `json:"replayable_pct"`
	Reachable           int     `json:"reachable"`
	ReachableReplayable int     `json:"reachable_replayable"`
}

// WitnessReport explains one hazard of one reachable method: the shortest
// call chain to the instruction-level source.
type WitnessReport struct {
	Method string   `json:"method"`
	Hazard string   `json:"hazard"`
	Chain  []string `json:"chain"`
	Cause  string   `json:"cause"`
}

// Report builds the replaylint report from an analysis result.
func (r *Result) Report(app string) *Report {
	rep := &Report{SchemaVersion: ReportSchemaVersion, App: app}
	name := func(id dex.MethodID) string { return r.Prog.Methods[id].Name }
	for id := range r.Prog.Methods {
		sum := r.Summary[id]
		mr := MethodReport{
			Name:       r.Prog.Methods[id].Name,
			Effect:     sum.String(),
			Local:      r.Local[id].String(),
			Class:      sum.Class().String(),
			Hazards:    []string{},
			Replayable: sum.Replayable(),
			Reachable:  r.Graph.Reachable[id],
		}
		for _, h := range sum.Hazards() {
			mr.Hazards = append(mr.Hazards, h.BitName())
		}
		rep.Methods = append(rep.Methods, mr)

		rep.Coverage.Methods++
		if mr.Replayable {
			rep.Coverage.Replayable++
		}
		if mr.Reachable {
			rep.Coverage.Reachable++
			if mr.Replayable {
				rep.Coverage.ReachableReplayable++
			}
		}
		if mr.Reachable && !mr.Replayable {
			for _, h := range sum.Hazards() {
				w := WitnessReport{Method: mr.Name, Hazard: h.BitName()}
				for _, hop := range r.Witness(dex.MethodID(id), h) {
					w.Chain = append(w.Chain, name(hop))
				}
				if len(w.Chain) > 0 {
					w.Cause = r.LocalCause(r.witnessEnd(dex.MethodID(id), h), h)
				}
				rep.Witnesses = append(rep.Witnesses, w)
			}
		}
	}
	if rep.Coverage.Methods > 0 {
		rep.Coverage.ReplayablePct =
			100 * float64(rep.Coverage.Replayable) / float64(rep.Coverage.Methods)
	}
	return rep
}

// witnessEnd returns the final method of id's witness chain for hazard (the
// local source), or id itself when there is no chain.
func (r *Result) witnessEnd(id dex.MethodID, hazard Effect) dex.MethodID {
	chain := r.Witness(id, hazard)
	if len(chain) == 0 {
		return id
	}
	return chain[len(chain)-1]
}

// ValidateReportJSON structurally validates a JSON-encoded Report: required
// keys, their types, and the cross-field invariants the schema promises
// (coverage totals reconcile with the rows; every witness chain starts at its
// method and is non-empty). It is what CI's replaylint -validate runs.
func ValidateReportJSON(data []byte) error {
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("replaylint report: not JSON: %w", err)
	}
	num := func(key string) (float64, error) {
		v, ok := raw[key].(float64)
		if !ok {
			return 0, fmt.Errorf("replaylint report: %q missing or not a number", key)
		}
		return v, nil
	}
	ver, err := num("schema_version")
	if err != nil {
		return err
	}
	if int(ver) != ReportSchemaVersion {
		return fmt.Errorf("replaylint report: schema_version %v, want %d", ver, ReportSchemaVersion)
	}
	if s, ok := raw["app"].(string); !ok || s == "" {
		return fmt.Errorf("replaylint report: %q missing or empty", "app")
	}

	methods, ok := raw["methods"].([]any)
	if !ok {
		return fmt.Errorf("replaylint report: %q missing or not an array", "methods")
	}
	replayable, reachable, reachRep := 0, 0, 0
	for i, m := range methods {
		obj, ok := m.(map[string]any)
		if !ok {
			return fmt.Errorf("replaylint report: methods[%d] not an object", i)
		}
		for _, key := range []string{"name", "effect", "local_effect", "class"} {
			if s, ok := obj[key].(string); !ok || s == "" {
				return fmt.Errorf("replaylint report: methods[%d].%s missing or empty", i, key)
			}
		}
		if _, ok := obj["hazards"].([]any); !ok {
			return fmt.Errorf("replaylint report: methods[%d].hazards missing or not an array", i)
		}
		rep, ok := obj["replayable"].(bool)
		if !ok {
			return fmt.Errorf("replaylint report: methods[%d].replayable missing or not a bool", i)
		}
		reach, ok := obj["reachable"].(bool)
		if !ok {
			return fmt.Errorf("replaylint report: methods[%d].reachable missing or not a bool", i)
		}
		if rep && len(obj["hazards"].([]any)) > 0 {
			return fmt.Errorf("replaylint report: methods[%d] replayable yet lists hazards", i)
		}
		if rep {
			replayable++
		}
		if reach {
			reachable++
			if rep {
				reachRep++
			}
		}
	}

	cov, ok := raw["coverage"].(map[string]any)
	if !ok {
		return fmt.Errorf("replaylint report: %q missing or not an object", "coverage")
	}
	covInt := func(key string) (int, error) {
		v, ok := cov[key].(float64)
		if !ok {
			return 0, fmt.Errorf("replaylint report: coverage.%s missing or not a number", key)
		}
		return int(v), nil
	}
	checks := []struct {
		key  string
		want int
	}{
		{"methods", len(methods)},
		{"replayable", replayable},
		{"reachable", reachable},
		{"reachable_replayable", reachRep},
	}
	for _, c := range checks {
		got, err := covInt(c.key)
		if err != nil {
			return err
		}
		if got != c.want {
			return fmt.Errorf("replaylint report: coverage.%s = %d, rows say %d", c.key, got, c.want)
		}
	}
	wits, ok := raw["witnesses"].([]any)
	if !ok && raw["witnesses"] != nil {
		return fmt.Errorf("replaylint report: %q not an array", "witnesses")
	}
	for i, w := range wits {
		obj, ok := w.(map[string]any)
		if !ok {
			return fmt.Errorf("replaylint report: witnesses[%d] not an object", i)
		}
		method, _ := obj["method"].(string)
		if method == "" {
			return fmt.Errorf("replaylint report: witnesses[%d].method missing", i)
		}
		if s, ok := obj["hazard"].(string); !ok || s == "" {
			return fmt.Errorf("replaylint report: witnesses[%d].hazard missing", i)
		}
		chain, ok := obj["chain"].([]any)
		if !ok || len(chain) == 0 {
			return fmt.Errorf("replaylint report: witnesses[%d].chain missing or empty", i)
		}
		if first, _ := chain[0].(string); first != method {
			return fmt.Errorf("replaylint report: witnesses[%d].chain starts at %q, not %q", i, chain[0], method)
		}
	}
	return nil
}
