package sa

import "math"

// Value-range lattice shared by the intraprocedural analysis in internal/lir
// (AnalyzeRanges) and the interprocedural summary driver in internal/sa/vra.
// The element is an interval over int64 plus a known-nonzero bit; the paper's
// pass-selection search (§3.5, Fig. 6) consumes it through the range passes
// (rangecheckelim, rangebranch, rangestrength), which discharge the bounds
// checks and trap guards the HGraph frontend inserts. The types live here —
// not in vra — because lir already imports sa and must not import vra.

// ValRange is one lattice element: the value is known to lie in [Lo, Hi],
// and when NonZero is set it is additionally known to differ from zero.
// Lo > Hi encodes bottom (no feasible value — an unreachable fact); the full
// interval with NonZero unset is top.
type ValRange struct {
	Lo, Hi  int64
	NonZero bool
}

// TopRange is the unconstrained element.
func TopRange() ValRange { return ValRange{Lo: math.MinInt64, Hi: math.MaxInt64} }

// BottomRange is the infeasible element (identity of Join).
func BottomRange() ValRange { return ValRange{Lo: math.MaxInt64, Hi: math.MinInt64} }

// ConstRange is the singleton interval.
func ConstRange(c int64) ValRange { return ValRange{Lo: c, Hi: c, NonZero: c != 0} }

// IsTop reports a fully unconstrained element.
func (r ValRange) IsTop() bool {
	return r.Lo == math.MinInt64 && r.Hi == math.MaxInt64 && !r.NonZero
}

// Empty reports bottom (an infeasible fact).
func (r ValRange) Empty() bool { return r.Lo > r.Hi }

// Norm folds the interval into the NonZero bit: an interval that excludes
// zero is nonzero whether or not a branch proved it.
func (r ValRange) Norm() ValRange {
	if !r.Empty() && (r.Lo > 0 || r.Hi < 0) {
		r.NonZero = true
	}
	return r
}

// NonNeg reports a proven-nonnegative value.
func (r ValRange) NonNeg() bool { return !r.Empty() && r.Lo >= 0 }

// Join is the lattice union (control-flow merge).
func (r ValRange) Join(o ValRange) ValRange {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	out := ValRange{Lo: min(r.Lo, o.Lo), Hi: max(r.Hi, o.Hi), NonZero: r.NonZero && o.NonZero}
	return out.Norm()
}

// Meet is the lattice intersection (applying a branch refinement).
func (r ValRange) Meet(o ValRange) ValRange {
	if r.Empty() {
		return r
	}
	if o.Empty() {
		return o
	}
	out := ValRange{Lo: max(r.Lo, o.Lo), Hi: min(r.Hi, o.Hi), NonZero: r.NonZero || o.NonZero}
	return out.Norm()
}

// Widen returns r widened against its previous iterate: any bound that moved
// is pushed to infinity so loop-carried chains converge in O(1) rounds.
func (r ValRange) Widen(prev ValRange) ValRange {
	if prev.Empty() {
		return r
	}
	if r.Lo < prev.Lo {
		r.Lo = math.MinInt64
	}
	if r.Hi > prev.Hi {
		r.Hi = math.MaxInt64
	}
	return r.Norm()
}

// String renders the element for witnesses and rtrace notes.
func (r ValRange) String() string {
	if r.Empty() {
		return "⊥"
	}
	s := "["
	if r.Lo == math.MinInt64 {
		s += "-inf, "
	} else {
		s += itoa(r.Lo) + ", "
	}
	if r.Hi == math.MaxInt64 {
		s += "+inf]"
	} else {
		s += itoa(r.Hi) + "]"
	}
	if r.NonZero && r.Lo <= 0 && r.Hi >= 0 {
		s += "≠0"
	}
	return s
}

// itoa avoids pulling strconv into the hot analysis path's import graph for
// one formatting helper.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [21]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = -u
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// RangeSummary is one method's interprocedural contract: the joined ranges of
// every argument the analyzed call sites pass for each parameter slot, and
// the joined range of every value the method can return. Non-integer slots
// are top. A parameter summary is only narrower than top when every caller is
// statically known and analyzable (vra falls back to top otherwise), so the
// summaries over-approximate any replayed invocation — region roots replay
// with arguments captured from in-program calls.
type RangeSummary struct {
	Params []ValRange
	Ret    ValRange
}

// ParamRange returns the summary for parameter slot i, top when the summary
// carries no information for it.
func (s RangeSummary) ParamRange(i int) ValRange {
	if i < 0 || i >= len(s.Params) {
		return TopRange()
	}
	return s.Params[i]
}
