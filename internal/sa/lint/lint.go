// Package lint is a stdlib-only determinism linter for the replay-critical
// packages (internal/ga, internal/core, internal/replay, internal/sa). The
// §3.6 search and §3.4 verification contracts require candidate evaluation to
// be a pure function of its inputs; three Go-level habits silently break
// that, and this linter forbids them:
//
//   - time-now: calling time.Now — wall-clock reads make results
//     run-dependent. (The pipeline's virtual clock lives in internal/device.)
//   - math-rand: calling package-level math/rand functions, which draw from
//     the global, unseeded source. Seeded rand.New(rand.NewSource(...))
//     generators are fine.
//   - map-range: ranging over a map, whose iteration order changes between
//     runs. Collect-and-sort first, or waive the site.
//
// A site that is genuinely order-insensitive (or observability-only) is
// waived with a comment on the statement's line or the line above:
//
//	//detlint:allow map-range — keyed writes, order-insensitive
//
// The linter is syntactic: it has no type checker (golang.org/x/tools is
// unavailable here). Map detection resolves local variables precisely through
// the parser's object chains (declarations, := assignments, parameters) and
// falls back to names only where syntax cannot reach: selector fields match
// struct fields declared with a map type anywhere in the indexed sources, and
// bare identifiers with no local object match package-level map variables.
// Index reference packages (internal/lir, internal/machine, ...) first so
// cross-package fields like machine.Program.Fns resolve.
//
// cmd/detlint wraps this package both as a standalone tool and as a
// `go vet -vettool` analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rules.
const (
	RuleTimeNow  = "time-now"
	RuleMathRand = "math-rand"
	RuleMapRange = "map-range"
)

// Finding is one determinism violation.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// globalRandFuncs are the package-level math/rand draws (all read the global
// source). Constructors (New, NewSource, NewZipf) are allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// Linter accumulates a cross-package map-type index and lints files against
// it.
type Linter struct {
	fset *token.FileSet
	// structMapFields holds struct field names declared with a map type
	// anywhere in the indexed sources (name-based: no type checker).
	structMapFields map[string]bool
	// pkgMapVars holds package-level variable names of map type.
	pkgMapVars map[string]bool
	// mapTypes holds named types defined as maps ("type Registry map[K]V").
	mapTypes map[string]bool
}

// New returns an empty linter.
func New() *Linter {
	return &Linter{
		fset:            token.NewFileSet(),
		structMapFields: map[string]bool{},
		pkgMapVars:      map[string]bool{},
		mapTypes:        map[string]bool{},
	}
}

// parseDir parses every non-test .go file in dir.
func (l *Linter) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// IndexDir records dir's named map types and map-typed struct fields and
// package variables without linting it. Index reference packages before
// linting packages that range over their fields.
func (l *Linter) IndexDir(dir string) error {
	files, err := l.parseDir(dir)
	if err != nil {
		return err
	}
	for _, f := range files {
		l.indexFile(f)
	}
	return nil
}

func (l *Linter) indexFile(f *ast.File) {
	// Named map types and struct fields of map type, anywhere in the file.
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.TypeSpec:
			if l.isMapType(d.Type) {
				l.mapTypes[d.Name.Name] = true
			}
		case *ast.StructType:
			for _, field := range d.Fields.List {
				if l.isMapType(field.Type) {
					for _, name := range field.Names {
						l.structMapFields[name.Name] = true
					}
				}
			}
		}
		return true
	})
	// Package-level map variables (top-level declarations only — function
	// locals resolve through object chains instead).
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			isMap := vs.Type != nil && l.isMapType(vs.Type)
			for i, name := range vs.Names {
				if isMap || (i < len(vs.Values) && l.isMapExpr(vs.Values[i], 0)) {
					l.pkgMapVars[name.Name] = true
				}
			}
		}
	}
}

// isMapType reports whether a type expression is (or names) a map type.
func (l *Linter) isMapType(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.MapType:
		return true
	case *ast.Ident:
		return l.mapTypes[t.Name]
	case *ast.SelectorExpr:
		return l.mapTypes[t.Sel.Name]
	case *ast.StarExpr:
		return l.isMapType(t.X)
	}
	return false
}

// isMapExpr reports whether a value expression evaluates to a map. Local
// identifiers resolve through the parser's object chain to their declaration
// (value spec, := assignment, or parameter); identifiers without a local
// object fall back to the package-level map-variable names, and selector
// expressions to the indexed struct-field names. depth bounds chains like
// m2 := m1.
func (l *Linter) isMapExpr(e ast.Expr, depth int) bool {
	if depth > 10 {
		return false
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return l.isMapExpr(e.X, depth+1)
	case *ast.CompositeLit:
		return l.isMapType(e.Type)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			return l.isMapType(e.Args[0])
		}
	case *ast.Ident:
		if e.Obj == nil {
			return l.pkgMapVars[e.Name]
		}
		switch d := e.Obj.Decl.(type) {
		case *ast.ValueSpec:
			if d.Type != nil {
				return l.isMapType(d.Type)
			}
			for i, name := range d.Names {
				if name.Name == e.Name && i < len(d.Values) {
					return l.isMapExpr(d.Values[i], depth+1)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != e.Name {
					continue
				}
				if len(d.Rhs) == len(d.Lhs) {
					return l.isMapExpr(d.Rhs[i], depth+1)
				}
				return false // multi-value call: unknowable without types
			}
		case *ast.Field:
			return l.isMapType(d.Type)
		}
	case *ast.SelectorExpr:
		return l.structMapFields[e.Sel.Name]
	}
	return false
}

// LintDir indexes dir and then checks its non-test files.
func (l *Linter) LintDir(dir string) ([]Finding, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	return l.lintFiles(files)
}

// LintFiles parses and checks the given files (the vettool path, where go vet
// hands us an explicit file list).
func (l *Linter) LintFiles(paths ...string) ([]Finding, error) {
	var files []*ast.File
	for _, p := range paths {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.lintFiles(files)
}

func (l *Linter) lintFiles(files []*ast.File) ([]Finding, error) {
	// Two passes: the lint targets' own declarations join the index first so
	// intra-package fields resolve regardless of file order.
	for _, f := range files {
		l.indexFile(f)
	}
	var out []Finding
	for _, f := range files {
		out = append(out, l.lintFile(f)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Offset < out[j].Pos.Offset
	})
	return out, nil
}

func (l *Linter) lintFile(f *ast.File) []Finding {
	timeName, randName := "", ""
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "time":
			timeName = "time"
			if name != "" {
				timeName = name
			}
		case "math/rand":
			randName = "rand"
			if name != "" {
				randName = name
			}
		}
	}

	// Waivers: any comment line containing "detlint:allow <rule>" waives that
	// rule on its own line and the line below.
	waived := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "detlint:allow")
			if idx < 0 {
				continue
			}
			line := l.fset.Position(c.Pos()).Line
			rest := c.Text[idx+len("detlint:allow"):]
			for _, rule := range []string{RuleTimeNow, RuleMathRand, RuleMapRange} {
				if strings.Contains(rest, rule) {
					for _, ln := range []int{line, line + 1} {
						if waived[ln] == nil {
							waived[ln] = map[string]bool{}
						}
						waived[ln][rule] = true
					}
				}
			}
		}
	}

	var out []Finding
	report := func(n ast.Node, rule, msg string) {
		pos := l.fset.Position(n.Pos())
		if waived[pos.Line][rule] {
			return
		}
		out = append(out, Finding{Pos: pos, Rule: rule, Message: msg})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Obj != nil { // Obj != nil: a local variable, not a package
				return true
			}
			if timeName != "" && pkg.Name == timeName && sel.Sel.Name == "Now" {
				report(n, RuleTimeNow,
					"wall-clock read; use the device virtual clock or waive observability-only timing")
			}
			if randName != "" && pkg.Name == randName && globalRandFuncs[sel.Sel.Name] {
				report(n, RuleMathRand,
					"draw from the global math/rand source; use a seeded rand.New(rand.NewSource(...))")
			}
		case *ast.RangeStmt:
			if l.isMapExpr(n.X, 0) {
				report(n, RuleMapRange,
					"map iteration order varies between runs; collect and sort keys, or waive an order-insensitive site")
			}
		}
		return true
	})
	return out
}
