package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// lintSrc writes src as a single-file package in a temp dir and lints it.
func lintSrc(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	findings, err := New().LintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func TestTimeNow(t *testing.T) {
	fs := lintSrc(t, `package p

import "time"

func f() time.Time { return time.Now() }

// Other time functions are fine.
func g() time.Duration { return time.Second }
`)
	if len(fs) != 1 || fs[0].Rule != RuleTimeNow {
		t.Fatalf("want one %s finding, got %v", RuleTimeNow, fs)
	}
}

func TestTimeNowRenamedImport(t *testing.T) {
	fs := lintSrc(t, `package p

import clock "time"

func f() clock.Time { return clock.Now() }
`)
	if len(fs) != 1 || fs[0].Rule != RuleTimeNow {
		t.Fatalf("renamed import: want one %s finding, got %v", RuleTimeNow, fs)
	}
}

func TestTimeNowLocalShadow(t *testing.T) {
	// A local variable named "time" is not the time package.
	fs := lintSrc(t, `package p

type ticker struct{}

func (ticker) Now() int { return 0 }

func f() int {
	time := ticker{}
	return time.Now()
}
`)
	if len(fs) != 0 {
		t.Fatalf("local shadow flagged: %v", fs)
	}
}

func TestMathRand(t *testing.T) {
	fs := lintSrc(t, `package p

import "math/rand"

func f() int { return rand.Intn(10) }

// Seeded generators are explicitly allowed.
func g() int { return rand.New(rand.NewSource(1)).Intn(10) }
`)
	if len(fs) != 1 || fs[0].Rule != RuleMathRand {
		t.Fatalf("want one %s finding, got %v", RuleMathRand, fs)
	}
}

func TestMapRange(t *testing.T) {
	fs := lintSrc(t, `package p

func f(m map[string]int, xs []int) int {
	s := 0
	for _, v := range m { // finding: map parameter
		s += v
	}
	for _, v := range xs { // slice: fine
		s += v
	}
	local := map[int]int{}
	for k := range local { // finding: composite literal
		s += k
	}
	made := make(map[int]bool)
	for k := range made { // finding: make(map...)
		if k > 0 {
			s++
		}
	}
	alias := made
	for range alias { // finding: := chain to a map
		s++
	}
	return s
}
`)
	got := rules(fs)
	if len(got) != 4 {
		t.Fatalf("want 4 %s findings, got %v: %v", RuleMapRange, got, fs)
	}
	for _, r := range got {
		if r != RuleMapRange {
			t.Fatalf("unexpected rule %s in %v", r, fs)
		}
	}
}

func TestMapRangeNamedTypeAndFields(t *testing.T) {
	fs := lintSrc(t, `package p

type Registry map[string]int

type Prog struct {
	Fns   Registry
	Names []string
}

func f(p Prog, r Registry) int {
	s := 0
	for _, v := range p.Fns { // finding: struct field of named map type
		s += v
	}
	for _, v := range r { // finding: parameter of named map type
		s += v
	}
	for range p.Names { // slice field: fine
		s++
	}
	return s
}
`)
	if got := rules(fs); len(got) != 2 {
		t.Fatalf("want 2 %s findings, got %v", RuleMapRange, fs)
	}
}

func TestSliceRangeNotFlagged(t *testing.T) {
	// The false positives that motivated precise local resolution: slices with
	// names that collide with map-typed fields elsewhere must stay clean.
	fs := lintSrc(t, `package p

type Other struct {
	Genes map[string]int
}

type Genome struct {
	Genes []int
}

func f(g Genome) int {
	s := 0
	for _, v := range g.Genes { // name collides with Other.Genes — known limit
		s += v
	}
	ids := []int{1, 2, 3}
	for _, id := range ids {
		s += id
	}
	kept := ids
	for _, id := range kept {
		s += id
	}
	return s
}
`)
	// The selector g.Genes is a name-based fallback and is expected to
	// (over-approximately) flag; the locals must not.
	for _, f := range fs {
		if f.Pos.Line != 13 {
			t.Fatalf("local slice range flagged at line %d: %v", f.Pos.Line, f)
		}
	}
}

func TestWaiver(t *testing.T) {
	fs := lintSrc(t, `package p

import "time"

func f(m map[string]int) int64 {
	s := int64(0)
	//detlint:allow map-range — keyed sum, order-insensitive
	for _, v := range m {
		s += int64(v)
	}
	s += time.Now().Unix() //detlint:allow time-now — fixture
	return s
}
`)
	if len(fs) != 0 {
		t.Fatalf("waived sites still flagged: %v", fs)
	}
}

func TestWaiverWrongRule(t *testing.T) {
	// A waiver names its rule; a mismatched rule does not silence the finding.
	fs := lintSrc(t, `package p

func f(m map[string]int) int {
	s := 0
	//detlint:allow time-now
	for _, v := range m {
		s += v
	}
	return s
}
`)
	if len(fs) != 1 || fs[0].Rule != RuleMapRange {
		t.Fatalf("mismatched waiver silenced the finding: %v", fs)
	}
}

func TestTestFilesSkipped(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

func f() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	fs, err := New().LintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("_test.go linted: %v", fs)
	}
}

// TestRepoClean is the enforcement test: the deterministic packages must lint
// clean (every remaining site carries an explicit, justified waiver). This is
// the same check cmd/detlint and CI run.
func TestRepoClean(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	l := New()
	for _, d := range []string{"internal/lir", "internal/machine", "internal/capture", "internal/obs", "internal/dex"} {
		if err := l.IndexDir(filepath.Join(root, d)); err != nil {
			t.Fatal(err)
		}
	}
	targets := []string{"internal/core", "internal/ga", "internal/replay", "internal/sa"}
	for _, d := range targets {
		if err := l.IndexDir(filepath.Join(root, d)); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range targets {
		findings, err := l.LintDir(filepath.Join(root, d))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
