package sa_test

import (
	"strings"
	"testing"

	"replayopt/internal/aot"
	"replayopt/internal/apps"
	"replayopt/internal/profile"
	"replayopt/internal/sa"
)

// The witness app is the acceptance check for the blocklist→effect upgrade at
// application scale: the effect analysis must deep-accept strictly more
// methods than the blocklist (the slot-collision kernel flips), while never
// rejecting a method the blocklist accepts.
func TestWitnessAppStrictIncrease(t *testing.T) {
	app, err := apps.Build(apps.WitnessSpec())
	if err != nil {
		t.Fatal(err)
	}
	prog := app.Prog

	kernel := mid(t, prog, "kernel")
	blendApply := mid(t, prog, "Blend.apply")
	hudFlush := mid(t, prog, "Hud.flush")
	if prog.Methods[blendApply].VSlot != prog.Methods[hudFlush].VSlot {
		t.Skip("vtable layout changed; slot collision gone")
	}

	bl := profile.AnalyzeBlocklist(prog)
	eff := profile.Analyze(prog)
	blCount, effCount := 0, 0
	for id := range prog.Methods {
		if bl.ReplayableDeep[id] {
			blCount++
		}
		if eff.ReplayableDeep[id] {
			effCount++
		}
		if bl.ReplayableDeep[id] && !eff.ReplayableDeep[id] {
			t.Errorf("%s: blocklist accepts, effect analysis rejects",
				prog.Methods[id].Name)
		}
	}
	if bl.ReplayableDeep[kernel] {
		t.Error("blocklist unexpectedly accepts kernel — the collision is gone")
	}
	if !eff.ReplayableDeep[kernel] {
		t.Errorf("effect analysis rejects kernel: %v", eff.Effects.Summary[kernel])
	}
	if effCount <= blCount {
		t.Errorf("deep-replayable count: effect %d, blocklist %d — want a strict increase",
			effCount, blCount)
	}

	// The app must actually run: a diagnostic example that traps teaches the
	// wrong lesson.
	code, err := aot.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, x := app.NewProcessAndExec(code)
	if _, err := x.Call(prog.Entry, nil); err != nil {
		t.Fatalf("witness app failed to run: %v", err)
	}
}

// Golden witness chain: the shortest call path explaining why the frame
// driver is unreplayable, ending at the method that invokes the IO native.
func TestWitnessChainGolden(t *testing.T) {
	app, err := apps.Build(apps.WitnessSpec())
	if err != nil {
		t.Fatal(err)
	}
	prog := app.Prog
	r := sa.Analyze(prog)

	run := mid(t, prog, "run")
	chain := r.Witness(run, sa.EffIO)
	var names []string
	for _, id := range chain {
		names = append(names, prog.Methods[id].Name)
	}
	want := "run -> present -> Hud.flush"
	if got := strings.Join(names, " -> "); got != want {
		t.Fatalf("witness chain %q, want %q", got, want)
	}
	cause := r.LocalCause(chain[len(chain)-1], sa.EffIO)
	if !strings.Contains(cause, "IO.drawFrame") {
		t.Errorf("local cause %q does not name the IO native", cause)
	}

	// The pure kernel has no witness for any hazard.
	kernel := mid(t, prog, "kernel")
	if w := r.Witness(kernel, sa.EffIO); w != nil {
		t.Errorf("kernel has an IO witness: %v", w)
	}
}
