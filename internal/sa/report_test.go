package sa_test

import (
	"encoding/json"
	"strings"
	"testing"

	"replayopt/internal/apps"
	"replayopt/internal/sa"
)

// TestReportSchema round-trips the witness app's report through JSON and the
// structural validator — the same check replaylint -json -validate performs —
// then corrupts the document in each way the schema forbids and asserts the
// validator rejects it.
func TestReportSchema(t *testing.T) {
	app, err := apps.Build(apps.WitnessSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep := sa.Analyze(app.Prog).Report("WitnessFilter")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.ValidateReportJSON(data); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	if len(rep.Witnesses) == 0 {
		t.Fatal("witness app produced no witnesses; corruption cases below assume some")
	}

	corrupt := func(name string, mutate func(doc map[string]any), wantErr string) {
		t.Helper()
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		mutate(doc)
		bad, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		err = sa.ValidateReportJSON(bad)
		if err == nil {
			t.Errorf("%s: corrupted report accepted", name)
			return
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantErr)
		}
	}

	corrupt("wrong schema version", func(doc map[string]any) {
		doc["schema_version"] = sa.ReportSchemaVersion + 1
	}, "schema_version")
	corrupt("missing app", func(doc map[string]any) {
		delete(doc, "app")
	}, "app")
	corrupt("methods not array", func(doc map[string]any) {
		doc["methods"] = "nope"
	}, "methods")
	corrupt("method missing effect", func(doc map[string]any) {
		m := doc["methods"].([]any)[0].(map[string]any)
		delete(m, "effect")
	}, "effect")
	corrupt("replayable with hazards", func(doc map[string]any) {
		m := doc["methods"].([]any)[0].(map[string]any)
		m["replayable"] = true
		m["hazards"] = []any{"IO"}
	}, "hazards")
	corrupt("coverage out of sync", func(doc map[string]any) {
		cov := doc["coverage"].(map[string]any)
		cov["replayable"] = cov["replayable"].(float64) + 1
	}, "coverage.replayable")
	corrupt("empty witness chain", func(doc map[string]any) {
		w := doc["witnesses"].([]any)[0].(map[string]any)
		w["chain"] = []any{}
	}, "chain")
	corrupt("chain not rooted at method", func(doc map[string]any) {
		w := doc["witnesses"].([]any)[0].(map[string]any)
		w["chain"] = []any{"someoneElse"}
	}, "chain")

	if sa.ValidateReportJSON([]byte("{not json")) == nil {
		t.Error("non-JSON accepted")
	}
}
