package sa

import (
	"sort"
	"strings"

	"replayopt/internal/dex"
)

// Points-to/alias summary types shared by the intraprocedural engine in
// internal/lir (AnalyzeAlias) and the interprocedural driver in
// internal/sa/pts. The paper's pass-selection search (§3.5, Fig. 6) consumes
// them through the alias-aware memory passes (storeforward, dse, licm,
// stackalloc), which disambiguate the may-alias store/load/call conflicts the
// kind-matching heuristics had to assume. The types live here — not in pts —
// because lir already imports sa and must not import pts.
//
// The location domain is deliberately coarse but caller-visible: a summary
// names *which statics, field slots, and array-element classes* a method (and
// everything it can transitively call) may read or write, never which concrete
// objects. Writes that provably land only in memory the callee itself
// allocated and never leaks are excluded — that exclusion is the analysis's
// precision payoff, and the reason a call to a fresh-buffer helper no longer
// clobbers every available load.

// LocKind classifies an abstract memory location.
type LocKind uint8

// Location kinds.
const (
	// LocGlobal is one static slot (OpStaticLoad/Store's Slot).
	LocGlobal LocKind = iota
	// LocField is one field slot across all objects (field-sensitive,
	// object-insensitive).
	LocField
	// LocElem is the single array-element location class: any element of any
	// array. Slot is always 0.
	LocElem
)

func (k LocKind) String() string { return [...]string{"global", "field", "elem"}[k] }

// MemLoc is one abstract caller-visible location.
type MemLoc struct {
	Kind LocKind
	Slot int64
}

// locLess orders locations (Kind, then Slot) for the sorted-set invariant.
func locLess(a, b MemLoc) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Slot < b.Slot
}

func (l MemLoc) String() string {
	if l.Kind == LocElem {
		return "elem"
	}
	return l.Kind.String() + ":" + itoa(l.Slot)
}

// LocSet is a set of abstract locations, kept sorted and deduplicated. Top
// ("may touch anything") is the lattice top — the summary of natives-free
// fallback paths, unanalyzable methods, and non-converged components.
type LocSet struct {
	Top  bool
	Locs []MemLoc
}

// TopLocs is the unconstrained set.
func TopLocs() LocSet { return LocSet{Top: true} }

// Empty reports the bottom element (touches nothing).
func (s LocSet) Empty() bool { return !s.Top && len(s.Locs) == 0 }

// Contains reports membership (everything is in Top).
func (s LocSet) Contains(l MemLoc) bool {
	if s.Top {
		return true
	}
	i := sort.Search(len(s.Locs), func(i int) bool { return !locLess(s.Locs[i], l) })
	return i < len(s.Locs) && s.Locs[i] == l
}

// Add inserts l, reporting whether the set changed.
func (s *LocSet) Add(l MemLoc) bool {
	if s.Top {
		return false
	}
	i := sort.Search(len(s.Locs), func(i int) bool { return !locLess(s.Locs[i], l) })
	if i < len(s.Locs) && s.Locs[i] == l {
		return false
	}
	s.Locs = append(s.Locs, MemLoc{})
	copy(s.Locs[i+1:], s.Locs[i:])
	s.Locs[i] = l
	return true
}

// AddSet joins o into s (bitwise-union analogue), reporting change.
func (s *LocSet) AddSet(o LocSet) bool {
	if s.Top {
		return false
	}
	if o.Top {
		s.Top = true
		s.Locs = nil
		return true
	}
	changed := false
	for _, l := range o.Locs {
		if s.Add(l) {
			changed = true
		}
	}
	return changed
}

// Intersects reports whether the two sets can name a common location.
func (s LocSet) Intersects(o LocSet) bool {
	if s.Top {
		return !o.Empty()
	}
	if o.Top {
		return !s.Empty()
	}
	i, j := 0, 0
	for i < len(s.Locs) && j < len(o.Locs) {
		switch {
		case s.Locs[i] == o.Locs[j]:
			return true
		case locLess(s.Locs[i], o.Locs[j]):
			i++
		default:
			j++
		}
	}
	return false
}

// Equal reports set equality.
func (s LocSet) Equal(o LocSet) bool {
	if s.Top != o.Top || len(s.Locs) != len(o.Locs) {
		return false
	}
	for i := range s.Locs {
		if s.Locs[i] != o.Locs[i] {
			return false
		}
	}
	return true
}

// Len reports the element count (0 for Top; check Top first when it matters).
func (s LocSet) Len() int { return len(s.Locs) }

// String renders the set for witnesses and reports.
func (s LocSet) String() string {
	if s.Top {
		return "⊤"
	}
	if len(s.Locs) == 0 {
		return "∅"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range s.Locs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.String())
	}
	b.WriteByte('}')
	return b.String()
}

// ModRefSummary is one method's interprocedural memory contract: the
// caller-visible locations it (and everything it can transitively call over
// the precise call graph) may write (Mod) and may read (Ref).
type ModRefSummary struct {
	Mod LocSet
	Ref LocSet
}

// TopModRef is the unanalyzable-method summary.
func TopModRef() ModRefSummary { return ModRefSummary{Mod: TopLocs(), Ref: TopLocs()} }

// Equal reports summary equality.
func (m ModRefSummary) Equal(o ModRefSummary) bool {
	return m.Mod.Equal(o.Mod) && m.Ref.Equal(o.Ref)
}

// AllocSite identifies one allocation site by its declaring method and
// original bytecode pc — the same (method, pc) keying the frontend stamps on
// call sites, stable across inlining and shared with the interpreter's
// AllocRecorder hook.
type AllocSite struct {
	Method dex.MethodID
	PC     int
}

// siteLess orders allocation sites for deterministic reporting.
func siteLess(a, b AllocSite) bool {
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	return a.PC < b.PC
}

// AliasSummaries is the program-wide points-to/mod-ref result internal/sa/pts
// attaches to Result.Alias. Everything is a pure function of the program:
// attaching it never perturbs lir.Config fingerprints or GA search traces.
type AliasSummaries struct {
	// ModRef[m] is method m's caller-visible mod/ref contract.
	ModRef []ModRefSummary
	// ParamEscape[m] has bit j set when the referent of m's parameter j may
	// escape through m (stored into reachable memory, returned, thrown, or
	// handed to an escaping callee parameter). Parameters past bit 63 are
	// conservatively escaping.
	ParamEscape []uint64

	// Sites lists every analyzed allocation site, sorted (deterministic
	// reporting); escaping holds the per-site verdict.
	Sites    []AllocSite
	escaping map[AllocSite]bool
}

// NewAliasSummaries allocates the per-method tables for n methods, every
// summary starting at bottom (the optimistic fixpoint seed).
func NewAliasSummaries(n int) *AliasSummaries {
	return &AliasSummaries{
		ModRef:      make([]ModRefSummary, n),
		ParamEscape: make([]uint64, n),
		escaping:    map[AllocSite]bool{},
	}
}

// SetSite records the escape verdict for one allocation site. Sites stays
// sorted; re-recording a site joins the verdict (escaping wins).
func (a *AliasSummaries) SetSite(s AllocSite, escapes bool) {
	if old, ok := a.escaping[s]; ok {
		a.escaping[s] = old || escapes
		return
	}
	a.escaping[s] = escapes
	i := sort.Search(len(a.Sites), func(i int) bool { return !siteLess(a.Sites[i], s) })
	a.Sites = append(a.Sites, AllocSite{})
	copy(a.Sites[i+1:], a.Sites[i:])
	a.Sites[i] = s
}

// SiteEscapes reports whether the allocation site may escape its method.
// Unknown sites (never analyzed) conservatively escape.
func (a *AliasSummaries) SiteEscapes(s AllocSite) bool {
	esc, ok := a.escaping[s]
	return !ok || esc
}

// SiteKnown reports whether the site was analyzed at all.
func (a *AliasSummaries) SiteKnown(s AllocSite) bool {
	_, ok := a.escaping[s]
	return ok
}

// ParamMayEscape reports whether the referent of method m's parameter j may
// escape through m. Out-of-range methods and high parameter indices escape.
func (a *AliasSummaries) ParamMayEscape(m dex.MethodID, j int) bool {
	if int(m) >= len(a.ParamEscape) || j < 0 {
		return true
	}
	if j >= 63 {
		return true
	}
	return a.ParamEscape[m]&(1<<uint(j)) != 0
}
