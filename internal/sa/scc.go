package sa

import "replayopt/internal/dex"

// Condense computes the strongly connected components of a directed graph
// over n method ids with successor function succ. It returns comp — the
// component index of every node — and comps, the components in reverse
// topological order of the condensation DAG: every component appears after
// the components it can reach, so a single forward pass over comps sees each
// component's callees fully resolved before the component itself. Members of
// each component are sorted by id.
//
// The implementation is Tarjan's algorithm with an explicit frame stack so
// deep call chains (the quadratic-fixpoint pathology this package exists to
// fix) cannot overflow the goroutine stack.
func Condense(n int, succ func(dex.MethodID) []dex.MethodID) (comp []int, comps [][]dex.MethodID) {
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n) // 0 = unvisited, else discovery index + 1
	low := make([]int, n)
	onstack := make([]bool, n)
	var stack []dex.MethodID
	counter := 0

	type frame struct {
		v    dex.MethodID
		succ []dex.MethodID
		next int
	}
	var frames []frame

	visit := func(v dex.MethodID) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onstack[v] = true
		frames = append(frames, frame{v: v, succ: succ(v)})
	}

	for start := 0; start < n; start++ {
		if index[start] != 0 {
			continue
		}
		visit(dex.MethodID(start))
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.next < len(fr.succ) {
				w := fr.succ[fr.next]
				fr.next++
				if index[w] == 0 {
					visit(w)
				} else if onstack[w] && index[w] < low[fr.v] {
					low[fr.v] = index[w]
				}
				continue
			}
			v := fr.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var c []dex.MethodID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					comp[w] = len(comps)
					c = append(c, w)
					if w == v {
						break
					}
				}
				sortMethods(c)
				comps = append(comps, c)
			}
		}
	}
	return comp, comps
}
