package vra

import (
	"encoding/json"
	"fmt"

	"replayopt/internal/dex"
	"replayopt/internal/lir"
	"replayopt/internal/sa"
)

// ReportSchemaVersion identifies the rangelint JSON layout. Bump on any
// incompatible change.
const ReportSchemaVersion = 1

// Report is the rangelint audit of one app: per method, how many of the
// frontend's bounds checks and divide trap guards the range analysis proves
// redundant, with a witness expression for every hot-region check it cannot.
type Report struct {
	SchemaVersion int            `json:"schema_version"`
	App           string         `json:"app"`
	Methods       []MethodReport `json:"methods"`
	Totals        Totals         `json:"totals"`
}

// MethodReport covers one analyzable method that contains at least one
// bounds check or divide site.
type MethodReport struct {
	Method string `json:"method"`
	// Hot marks membership in the app's replayable hot region — the code
	// the search actually compiles, where an undischarged check costs
	// cycles on every replay.
	Hot    bool `json:"hot"`
	Checks int  `json:"checks"`
	Proven int  `json:"proven"`
	// DivSites counts Div/Rem instructions, DivProven the subset whose
	// divisor the analysis proves nonzero (guard removable).
	DivSites  int       `json:"div_sites"`
	DivProven int       `json:"div_proven"`
	Witnesses []Witness `json:"witnesses,omitempty"`
}

// Witness names one unproven hot-region bounds check with the facts the
// analysis did establish, so a reader can see what is missing for the proof.
type Witness struct {
	Block string `json:"block"`
	// Expr is the failed obligation, e.g. "v7 ∈ [0, +inf] !< arrlen(v3)".
	Expr string `json:"expr"`
}

// Totals aggregates the per-method rows plus the interprocedural summary
// counts (parameter/return slots narrower than top).
type Totals struct {
	Methods        int `json:"methods"`
	HotMethods     int `json:"hot_methods"`
	Checks         int `json:"checks"`
	Proven         int `json:"proven"`
	DivSites       int `json:"div_sites"`
	DivProven      int `json:"div_proven"`
	ParamsNarrowed int `json:"params_narrowed"`
	RetsNarrowed   int `json:"rets_narrowed"`
}

// BuildReport audits static.Prog under the summaries already attached to
// static (call Attach first). hot lists the method ids of the app's hot
// region (nil when the app has none). Deterministic: methods by id, sites in
// program order.
func BuildReport(app string, static *sa.Result, hot []dex.MethodID) *Report {
	rep := &Report{SchemaVersion: ReportSchemaVersion, App: app}
	inHot := map[dex.MethodID]bool{}
	for _, id := range hot {
		inHot[id] = true
	}
	for i, m := range static.Prog.Methods {
		if m.Uncompilable {
			continue
		}
		f, err := lir.BuildSSA(static.Prog, dex.MethodID(i))
		if err != nil {
			continue
		}
		ra := lir.AnalyzeRanges(f, static)
		mr := MethodReport{Method: m.Name, Hot: inHot[dex.MethodID(i)]}
		for _, b := range f.Blocks {
			for _, v := range b.Insns {
				switch v.Op {
				case lir.OpBoundsCheck:
					mr.Checks++
					if _, ok := ra.ProvenInBounds(v); ok {
						mr.Proven++
					} else if mr.Hot {
						mr.Witnesses = append(mr.Witnesses, Witness{
							Block: fmt.Sprintf("b%d", b.ID),
							Expr:  witnessExpr(ra, b, v),
						})
					}
				case lir.OpDiv, lir.OpRem:
					mr.DivSites++
					if _, ok := ra.NonZeroAt(b, v.Args[1]); ok {
						mr.DivProven++
					}
				}
			}
		}
		if mr.Checks == 0 && mr.DivSites == 0 {
			continue
		}
		rep.Methods = append(rep.Methods, mr)
		rep.Totals.Methods++
		if mr.Hot {
			rep.Totals.HotMethods++
		}
		rep.Totals.Checks += mr.Checks
		rep.Totals.Proven += mr.Proven
		rep.Totals.DivSites += mr.DivSites
		rep.Totals.DivProven += mr.DivProven
	}
	rep.Totals.ParamsNarrowed, rep.Totals.RetsNarrowed = Narrowed(static.Ranges)
	return rep
}

// witnessExpr renders the unmet obligation of one bounds check: the index
// range the analysis derived against what it knows about the array length.
func witnessExpr(ra *lir.RangeFacts, b *lir.Block, check *lir.Value) string {
	arr, idx := check.Args[0], check.Args[1]
	length := fmt.Sprintf("arrlen(v%d)", arr.ID)
	if arr.Op == lir.OpNewArray && len(arr.Args) > 0 && arr.Args[0].Op == lir.OpConstInt {
		length = fmt.Sprintf("%d", arr.Args[0].Imm)
	}
	return fmt.Sprintf("v%d ∈ %s !< %s", idx.ID, ra.At(b, idx), length)
}

// ValidateReportJSON checks that data is a structurally valid rangelint
// report: schema version, required keys with the right JSON types, and the
// cross-field invariants (totals reconcile with the rows, proven counts never
// exceed site counts). Mirrors sa.ValidateReportJSON for replaylint.
func ValidateReportJSON(data []byte) error {
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("rangelint report: %w", err)
	}
	num := func(m map[string]any, key string) (int, error) {
		v, ok := m[key]
		if !ok {
			return 0, fmt.Errorf("rangelint report: missing %q", key)
		}
		f, ok := v.(float64)
		if !ok || f != float64(int(f)) || f < 0 {
			return 0, fmt.Errorf("rangelint report: %q is not a nonnegative integer", key)
		}
		return int(f), nil
	}
	sv, err := num(raw, "schema_version")
	if err != nil {
		return err
	}
	if sv != ReportSchemaVersion {
		return fmt.Errorf("rangelint report: schema_version %d, want %d", sv, ReportSchemaVersion)
	}
	if _, ok := raw["app"].(string); !ok {
		return fmt.Errorf("rangelint report: missing or non-string %q", "app")
	}
	tot, ok := raw["totals"].(map[string]any)
	if !ok {
		return fmt.Errorf("rangelint report: missing %q object", "totals")
	}
	want := map[string]int{}
	for _, key := range []string{"methods", "hot_methods", "checks", "proven",
		"div_sites", "div_proven", "params_narrowed", "rets_narrowed"} {
		n, err := num(tot, key)
		if err != nil {
			return err
		}
		want[key] = n
	}
	methods, ok := raw["methods"].([]any)
	if !ok && raw["methods"] != nil {
		return fmt.Errorf("rangelint report: %q is not an array", "methods")
	}
	got := map[string]int{}
	for i, el := range methods {
		m, ok := el.(map[string]any)
		if !ok {
			return fmt.Errorf("rangelint report: methods[%d] is not an object", i)
		}
		if _, ok := m["method"].(string); !ok {
			return fmt.Errorf("rangelint report: methods[%d] missing %q", i, "method")
		}
		hot, ok := m["hot"].(bool)
		if !ok {
			return fmt.Errorf("rangelint report: methods[%d] missing boolean %q", i, "hot")
		}
		row := map[string]int{}
		for _, key := range []string{"checks", "proven", "div_sites", "div_proven"} {
			n, err := num(m, key)
			if err != nil {
				return fmt.Errorf("methods[%d]: %w", i, err)
			}
			row[key] = n
		}
		if row["proven"] > row["checks"] || row["div_proven"] > row["div_sites"] {
			return fmt.Errorf("rangelint report: methods[%d] proves more sites than it has", i)
		}
		got["methods"]++
		if hot {
			got["hot_methods"]++
		}
		for _, key := range []string{"checks", "proven", "div_sites", "div_proven"} {
			got[key] += row[key]
		}
	}
	for _, key := range []string{"methods", "hot_methods", "checks", "proven", "div_sites", "div_proven"} {
		if got[key] != want[key] {
			return fmt.Errorf("rangelint report: totals.%s = %d but rows sum to %d", key, want[key], got[key])
		}
	}
	return nil
}
