// Package vra computes interprocedural value-range summaries over the CHA/RTA
// call graph: for every method, the joined range of each argument its callers
// pass and of each value it can return. The summaries feed the intraprocedural
// engine in internal/lir (AnalyzeRanges), which the range passes — the §3.5
// check-elimination story, Fig. 6's analyze stage — use to discharge the
// bounds checks and zero-divisor trap guards the HGraph frontend inserts.
//
// The package sits above both internal/sa (lattice types, call graph, SCC
// condensation) and internal/lir (SSA construction and the per-function
// engine): sa cannot import lir, so the driver that needs both lives here and
// hands its result back via Attach(static). Everything is deterministic — a
// pure function of the program — so attaching summaries never perturbs
// lir.Config fingerprints or GA search traces.
package vra

import (
	"replayopt/internal/dex"
	"replayopt/internal/lir"
	"replayopt/internal/sa"
)

// rounds is the number of return/parameter sweeps. Each sweep only narrows
// summaries that start at top, so any prefix of the sequence is sound; two
// rounds let return ranges flow into parameter summaries and back.
const rounds = 2

// Attach computes interprocedural range summaries for static.Prog and stores
// them in static.Ranges, where the lir range passes read them. Idempotent and
// deterministic: calling it again recomputes byte-identical summaries.
func Attach(static *sa.Result) {
	static.Ranges = nil // drop stale summaries; the engine reads through static
	prog := static.Prog
	n := len(prog.Methods)
	sums := make([]sa.RangeSummary, n)
	for i, m := range prog.Methods {
		ps := make([]sa.ValRange, m.NumArgs)
		for j := range ps {
			ps[j] = sa.TopRange()
		}
		sums[i] = sa.RangeSummary{Params: ps, Ret: sa.TopRange()}
	}
	// The working slice is attached before the fixpoint: AnalyzeRanges reads
	// parameter and return summaries through static.Ranges, so in-progress
	// states must be visible. Every intermediate state over-approximates the
	// concrete semantics (all slots start at top and each sweep narrows from
	// a sound previous iterate), so early reads stay sound.
	static.Ranges = sums

	fns := buildSSACache(prog)

	// Reverse-topological components: a forward pass sees callees before
	// callers, so return summaries propagate bottom-up in one sweep.
	_, comps := sa.Condense(n, func(v dex.MethodID) []dex.MethodID {
		return static.Graph.Callees[v]
	})

	for round := 0; round < rounds; round++ {
		// Phase A: return summaries, callees first.
		for _, c := range comps {
			for _, m := range c {
				if fns[m] == nil {
					continue
				}
				sums[m].Ret = lir.AnalyzeRanges(fns[m], static).ReturnRange()
			}
		}
		// Phase B: parameter summaries. All call sites are accumulated into
		// a fresh table first and committed at once, so a summary never
		// narrows based on a half-updated iterate of itself.
		pend := accumulateCallSites(static, fns)
		for i := 0; i < n; i++ {
			if !callersKnown(static, fns, dex.MethodID(i)) || pend[i] == nil {
				continue // stays top: some invocation escapes the analysis
			}
			copy(sums[i].Params, pend[i])
		}
	}
}

// buildSSACache constructs SSA once per analyzable method. Uncompilable
// methods and frontend failures yield nil — their bodies contribute no call
// sites and their summaries stay top.
func buildSSACache(prog *dex.Program) []*lir.Function {
	fns := make([]*lir.Function, len(prog.Methods))
	for i := range prog.Methods {
		if prog.Methods[i].Uncompilable {
			continue
		}
		if f, err := lir.BuildSSA(prog, dex.MethodID(i)); err == nil {
			fns[i] = f
		}
	}
	return fns
}

// accumulateCallSites joins the argument ranges of every analyzable call site
// into a per-callee table (nil where no site was seen). Virtual calls fan out
// to every CHA/RTA implementation of the declared target. Iteration is by
// method index with program-order call sites and sorted ImplsOf lists, so the
// result is deterministic.
func accumulateCallSites(static *sa.Result, fns []*lir.Function) [][]sa.ValRange {
	n := len(static.Prog.Methods)
	pend := make([][]sa.ValRange, n)
	addSite := func(callee dex.MethodID, args []sa.ValRange) {
		if callee < 0 || int(callee) >= n {
			return
		}
		na := static.Prog.Methods[callee].NumArgs
		row := pend[callee]
		if row == nil {
			row = make([]sa.ValRange, na)
			for j := range row {
				row[j] = sa.BottomRange()
			}
			pend[callee] = row
		}
		k := min(na, len(args))
		for j := 0; j < k; j++ {
			row[j] = row[j].Join(args[j])
		}
		for j := k; j < na; j++ {
			row[j] = sa.TopRange() // arity mismatch: no claim about the slot
		}
	}
	for i := 0; i < n; i++ {
		if fns[i] == nil {
			continue
		}
		lir.AnalyzeRanges(fns[i], static).CallSites(func(call *lir.Value, args []sa.ValRange) {
			if call.Op == lir.OpCallStatic {
				addSite(dex.MethodID(call.Sym), args)
				return
			}
			for _, impl := range static.Graph.ImplsOf(dex.MethodID(call.Sym)) {
				addSite(impl, args)
			}
		})
	}
	return pend
}

// callersKnown reports whether every way id can be invoked flows through a
// call site the accumulator saw: id is not the program entry (invoked from
// outside any managed body) and every caller on the precise graph has SSA.
// Otherwise the parameter summary must stay top.
func callersKnown(static *sa.Result, fns []*lir.Function, id dex.MethodID) bool {
	if id == static.Prog.Entry {
		return false
	}
	for _, c := range static.Graph.Callers[id] {
		if fns[c] == nil {
			return false
		}
	}
	return true
}

// Narrowed counts parameter and return slots carrying a fact narrower than
// top — the observability number reported by core's prepare span and the
// rangelint totals.
func Narrowed(sums []sa.RangeSummary) (params, rets int) {
	for i := range sums {
		for _, p := range sums[i].Params {
			if !p.IsTop() {
				params++
			}
		}
		if !sums[i].Ret.IsTop() {
			rets++
		}
	}
	return params, rets
}
