package vra_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"replayopt/internal/apps"
	"replayopt/internal/dex"
	"replayopt/internal/minic"
	"replayopt/internal/sa"
	"replayopt/internal/sa/vra"
)

func analyzeSource(t *testing.T, src string) *sa.Result {
	t.Helper()
	prog, err := minic.CompileSource("vratest", src)
	if err != nil {
		t.Fatal(err)
	}
	static := sa.Analyze(prog)
	vra.Attach(static)
	return static
}

func summaryOf(t *testing.T, static *sa.Result, name string) sa.RangeSummary {
	t.Helper()
	id, ok := static.Prog.MethodByName(name)
	if !ok {
		t.Fatalf("method %s not found", name)
	}
	return static.Ranges[id]
}

// TestInterproceduralNarrowing checks the core contract: a callee's parameter
// summary is the join of the argument ranges its callers pass, and return
// summaries flow back to call sites.
func TestInterproceduralNarrowing(t *testing.T) {
	static := analyzeSource(t, `
func helper(int x) int { return x + 1; }
func clamp(int d) int { return 100 / d; }
func main() int {
	int a = helper(3);
	int b = helper(7);
	int c = clamp(a) + clamp(b);
	print_int(c);
	return c;
}`)
	h := summaryOf(t, static, "helper")
	if h.Params[0].Lo != 3 || h.Params[0].Hi != 7 {
		t.Errorf("helper param = %s, want [3, 7]", h.Params[0])
	}
	if h.Ret.Lo != 4 || h.Ret.Hi != 8 {
		t.Errorf("helper ret = %s, want [4, 8]", h.Ret)
	}
	// clamp's argument is helper's return value: the summary chain must
	// propagate callee returns into caller argument ranges, proving the
	// divisor nonzero.
	c := summaryOf(t, static, "clamp")
	if c.Params[0].Lo != 4 || c.Params[0].Hi != 8 || !c.Params[0].NonZero {
		t.Errorf("clamp param = %s, want nonzero [4, 8]", c.Params[0])
	}
}

// TestUnknownCallerForcesTop: a method with any caller the analysis cannot
// build SSA for (here an @uncompilable one) must keep top parameter
// summaries — that caller's argument ranges were never accumulated.
func TestUnknownCallerForcesTop(t *testing.T) {
	static := analyzeSource(t, `
func shared(int x) int { return x * 2; }
@uncompilable
func weird() int { return shared(1000000); }
func main() int {
	int r = shared(1) + weird();
	print_int(r);
	return r;
}`)
	s := summaryOf(t, static, "shared")
	if !s.Params[0].IsTop() {
		t.Errorf("shared param = %s, want top (uncompilable caller)", s.Params[0])
	}
}

// TestEntryParamsStayTop: the entry point is invoked from outside any managed
// body, so nothing may constrain its parameters (none here) or be derived
// from absent call sites; its return summary may still narrow.
func TestEntryParamsStayTop(t *testing.T) {
	static := analyzeSource(t, `
func main() int { print_int(1); return 1; }`)
	s := summaryOf(t, static, "main")
	if s.Ret.Lo != 1 || s.Ret.Hi != 1 {
		t.Errorf("main ret = %s, want [1, 1]", s.Ret)
	}
}

// TestVirtualFanOut: a virtual call contributes its argument ranges to every
// CHA/RTA implementation of the declared target.
func TestVirtualFanOut(t *testing.T) {
	static := analyzeSource(t, `
class A { func f(int v) int { return v + 1; } }
class B extends A { func f(int v) int { return v + 2; } }
func main() int {
	A a = new A();
	if (itof(3) > 1.0) { a = new B(); }
	int r = a.f(9);
	print_int(r);
	return r;
}`)
	for _, name := range []string{"A.f", "B.f"} {
		p := summaryOf(t, static, name).ParamRange(1) // slot 0 is the receiver
		if p.Lo != 9 || p.Hi != 9 {
			t.Errorf("%s param = %s, want [9, 9]", name, p)
		}
	}
}

// TestAttachDeterministic: two attachments over the same program must produce
// byte-identical summaries and reports — the property that keeps GA search
// traces reproducible with range analysis on.
func TestAttachDeterministic(t *testing.T) {
	app, err := apps.Build(apps.WitnessSpec())
	if err != nil {
		t.Fatal(err)
	}
	encode := func() ([]byte, []byte) {
		static := sa.Analyze(app.Prog)
		vra.Attach(static)
		sums, err := json.Marshal(static.Ranges)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := json.Marshal(vra.BuildReport("WitnessFilter", static, nil))
		if err != nil {
			t.Fatal(err)
		}
		return sums, rep
	}
	s1, r1 := encode()
	s2, r2 := encode()
	if !bytes.Equal(s1, s2) {
		t.Error("summaries differ between two Attach runs")
	}
	if !bytes.Equal(r1, r2) {
		t.Error("reports differ between two BuildReport runs")
	}
}

// TestReportSchema round-trips a report through JSON and the structural
// validator (the rangelint -json -validate path), then corrupts it in each
// way the schema forbids.
func TestReportSchema(t *testing.T) {
	app, err := apps.Build(apps.WitnessSpec())
	if err != nil {
		t.Fatal(err)
	}
	static := sa.Analyze(app.Prog)
	vra.Attach(static)
	// Mark every method hot so unproven checks produce witnesses.
	var hot []dex.MethodID
	for i := range app.Prog.Methods {
		hot = append(hot, dex.MethodID(i))
	}
	rep := vra.BuildReport("WitnessFilter", static, hot)
	if rep.Totals.Checks == 0 {
		t.Fatal("witness app has no bounds checks; schema cases below assume some")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := vra.ValidateReportJSON(data); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	corrupt := func(name string, mutate func(doc map[string]any), wantErr string) {
		t.Helper()
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		mutate(doc)
		bad, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		err = vra.ValidateReportJSON(bad)
		if err == nil {
			t.Errorf("%s: corrupted report accepted", name)
			return
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantErr)
		}
	}

	firstMethod := func(doc map[string]any) map[string]any {
		return doc["methods"].([]any)[0].(map[string]any)
	}
	corrupt("wrong schema version", func(doc map[string]any) {
		doc["schema_version"] = vra.ReportSchemaVersion + 1
	}, "schema_version")
	corrupt("missing app", func(doc map[string]any) {
		delete(doc, "app")
	}, "app")
	corrupt("totals mismatch", func(doc map[string]any) {
		doc["totals"].(map[string]any)["checks"] = 9999
	}, "totals.checks")
	corrupt("proven exceeds checks", func(doc map[string]any) {
		m := firstMethod(doc)
		m["proven"] = m["checks"].(float64) + 1
		// Keep totals consistent so the over-proof check is what fires.
		doc["totals"].(map[string]any)["proven"] = rep.Totals.Proven + 1
	}, "proves more")
	corrupt("missing hot flag", func(doc map[string]any) {
		delete(firstMethod(doc), "hot")
	}, "hot")
	corrupt("negative count", func(doc map[string]any) {
		doc["totals"].(map[string]any)["div_sites"] = -1
	}, "div_sites")
}
