package sa

import "replayopt/internal/dex"

// CallGraph is the precise managed call graph. Virtual calls resolve to the
// vtable entries of *instantiated subclasses of the declaring class* (CHA
// restricted by RTA's instantiation set), not — as the §3.1 blocklist's
// Program.Callees over-approximation does — to every class that happens to
// populate the same vtable slot.
type CallGraph struct {
	Prog *dex.Program

	// Callees[m] are the managed methods m can invoke, deduplicated and
	// sorted by id.
	Callees [][]dex.MethodID
	// Callers is the reverse graph of Callees.
	Callers [][]dex.MethodID

	// Instantiated[c] reports that class c is allocated (OpNewInstance)
	// anywhere in the program. Only instantiated classes can be dispatch
	// receivers, so uninstantiated overrides never contribute targets.
	Instantiated []bool
	// Reachable[m] reports that m is RTA-reachable from the entry point.
	Reachable []bool

	// subclasses[c] lists c and every transitive subclass of c.
	subclasses [][]dex.ClassID
}

// BuildGraph constructs the call graph for prog.
func BuildGraph(prog *dex.Program) *CallGraph {
	g := &CallGraph{Prog: prog}
	g.buildHierarchy()
	g.buildInstantiated()
	g.buildEdges()
	g.buildReachable()
	return g
}

// buildHierarchy precomputes the subclass closure of every class.
func (g *CallGraph) buildHierarchy() {
	n := len(g.Prog.Classes)
	g.subclasses = make([][]dex.ClassID, n)
	for i := range g.subclasses {
		g.subclasses[i] = []dex.ClassID{dex.ClassID(i)}
	}
	// Walk each class's super chain once: c is a subclass of every
	// ancestor.
	for i, c := range g.Prog.Classes {
		for s := c.Super; s != dex.NoClass; s = g.Prog.Classes[s].Super {
			g.subclasses[s] = append(g.subclasses[s], dex.ClassID(i))
		}
	}
}

// buildInstantiated scans every method body for OpNewInstance. Instantiation
// anywhere counts (classic RTA restricts to reachable allocations; scanning
// the whole program is the sound, simpler variant — an object can only exist
// if some code path allocated it).
func (g *CallGraph) buildInstantiated() {
	g.Instantiated = make([]bool, len(g.Prog.Classes))
	for _, m := range g.Prog.Methods {
		for _, in := range m.Code {
			if in.Op == dex.OpNewInstance {
				g.Instantiated[in.Sym] = true
			}
		}
	}
}

// ImplsOf returns the possible runtime targets of a call to declared method
// decl: the method itself for static dispatch, or the vtable entries of the
// instantiated subclasses of the declaring class, deduplicated and sorted.
func (g *CallGraph) ImplsOf(decl dex.MethodID) []dex.MethodID {
	m := g.Prog.Methods[decl]
	if !m.Virtual || m.Class == dex.NoClass {
		return []dex.MethodID{decl}
	}
	seen := map[dex.MethodID]bool{}
	var out []dex.MethodID
	for _, c := range g.subclasses[m.Class] {
		if !g.Instantiated[c] {
			continue
		}
		vt := g.Prog.Classes[c].VTable
		if m.VSlot >= len(vt) {
			continue
		}
		t := vt[m.VSlot]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sortMethods(out)
	return out
}

// buildEdges fills Callees/Callers from every invoke site.
func (g *CallGraph) buildEdges() {
	n := len(g.Prog.Methods)
	g.Callees = make([][]dex.MethodID, n)
	g.Callers = make([][]dex.MethodID, n)
	for i, m := range g.Prog.Methods {
		seen := map[dex.MethodID]bool{}
		var out []dex.MethodID
		add := func(id dex.MethodID) {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		for _, in := range m.Code {
			switch in.Op {
			case dex.OpInvokeStatic:
				add(dex.MethodID(in.Sym))
			case dex.OpInvokeVirtual:
				for _, t := range g.ImplsOf(dex.MethodID(in.Sym)) {
					add(t)
				}
			}
		}
		sortMethods(out)
		g.Callees[i] = out
	}
	for i, outs := range g.Callees {
		for _, c := range outs {
			g.Callers[c] = append(g.Callers[c], dex.MethodID(i))
		}
	}
	for i := range g.Callers {
		sortMethods(g.Callers[i])
	}
}

// buildReachable marks the methods RTA-reachable from the entry point.
func (g *CallGraph) buildReachable() {
	g.Reachable = make([]bool, len(g.Prog.Methods))
	stack := []dex.MethodID{g.Prog.Entry}
	g.Reachable[g.Prog.Entry] = true
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Callees[m] {
			if !g.Reachable[c] {
				g.Reachable[c] = true
				stack = append(stack, c)
			}
		}
	}
}

// MonoTarget reports the single possible runtime target of a call to
// declared method decl, if there is exactly one — the guard-free
// devirtualization condition internal/lir consults.
func (g *CallGraph) MonoTarget(decl dex.MethodID) (dex.MethodID, bool) {
	impls := g.ImplsOf(decl)
	if len(impls) == 1 {
		return impls[0], true
	}
	return 0, false
}
