// Package sa is the interprocedural static-analysis layer: a call graph
// built with CHA (class-hierarchy-restricted virtual targets) refined by RTA
// (only instantiated receiver classes dispatch), an SCC-condensed fixpoint
// over a method-effect lattice, and shortest witness call chains explaining
// every non-replayable verdict.
//
// It replaces the paper's boolean §3.1 replayability blocklist — "any I/O,
// non-determinism, JNI, or exception anywhere in the call tree disqualifies
// the region" — with a precise characterization of *which* effects each
// method can have, over a much smaller (but still sound) call graph. Three
// consumers query it: Algorithm 1's region selection (internal/profile),
// the optimizing backend's guard-elimination decisions (internal/lir), and
// the verification-map builder (internal/verify). cmd/replaylint exposes the
// verdicts as a diagnostics CLI.
//
// The package depends only on internal/dex so every other layer can import
// it freely.
package sa

import (
	"sort"
	"strings"

	"replayopt/internal/dex"
)

// Effect is a bitmask over the method-effect lattice. Join is bitwise OR;
// the partial order is bit inclusion:
//
//	Pure ⊑ ReadOnly ⊑ LocalWrite ⊑ EscapingWrite ⊑ {IO, NonDet, JNI, MayThrow}
//
// The first four levels order the memory footprint (Class); the four hazard
// bits are incomparable top elements — any one of them makes a method
// non-replayable under §3.1.
type Effect uint16

// Effect bits.
const (
	// EffReadHeap: reads heap or static state (fields, arrays, globals).
	EffReadHeap Effect = 1 << iota
	// EffWriteLocal: writes only memory the method itself allocated and
	// that provably does not escape (not returned, thrown, stored into
	// another object, or passed to a callee).
	EffWriteLocal
	// EffWriteEscaping: writes memory visible after the method returns —
	// statics, fields/elements of parameters, or escaped allocations.
	EffWriteEscaping
	// EffAlloc: allocates managed memory (may trigger a GC).
	EffAlloc
	// EffMayThrow: may execute OpThrow (§3.1's exception blocklist).
	EffMayThrow
	// EffJNI: calls a native that is deterministic but not
	// intrinsic-replaceable — the §3.1 JNI blocklist.
	EffJNI
	// EffIO: calls an I/O native.
	EffIO
	// EffNonDet: calls a clock/PRNG native.
	EffNonDet
)

// EffPure is the lattice bottom: no effects at all.
const EffPure Effect = 0

// EffHazards are the bits that make a method non-replayable.
const EffHazards = EffMayThrow | EffJNI | EffIO | EffNonDet

// hazardOrder lists the hazard bits in reporting order.
var hazardOrder = [...]Effect{EffIO, EffNonDet, EffJNI, EffMayThrow}

// Class is the memory-footprint level of an effect set (the totally ordered
// part of the lattice).
type Class uint8

// Classes, from bottom to top.
const (
	ClassPure Class = iota
	ClassReadOnly
	ClassLocalWrite
	ClassEscapingWrite
)

func (c Class) String() string {
	return [...]string{"Pure", "ReadOnly", "LocalWrite", "EscapingWrite"}[c]
}

// Class returns the memory-footprint level of e.
func (e Effect) Class() Class {
	switch {
	case e&EffWriteEscaping != 0:
		return ClassEscapingWrite
	case e&EffWriteLocal != 0:
		return ClassLocalWrite
	case e&EffReadHeap != 0:
		return ClassReadOnly
	default:
		return ClassPure
	}
}

// Join is the lattice join (bitwise union).
func (e Effect) Join(o Effect) Effect { return e | o }

// Leq reports whether e ⊑ o (bit inclusion).
func (e Effect) Leq(o Effect) bool { return e&^o == 0 }

// Replayable reports whether e carries no §3.1 hazard. Writes — local or
// escaping — do not disqualify a region: escaping writes are exactly what
// the §3.4 verification map records and checks.
func (e Effect) Replayable() bool { return e&EffHazards == 0 }

// Hazards returns the hazard bits of e in reporting order.
func (e Effect) Hazards() []Effect {
	var out []Effect
	for _, h := range hazardOrder {
		if e&h != 0 {
			out = append(out, h)
		}
	}
	return out
}

// BitName returns the report name of a single effect bit ("IO", "NonDet",
// "MayThrow", ...). Compound effect sets render via String.
func (e Effect) BitName() string { return bitName(e) }

// bitNames maps single effect bits to their report names.
func bitName(e Effect) string {
	switch e {
	case EffReadHeap:
		return "ReadHeap"
	case EffWriteLocal:
		return "LocalWrite"
	case EffWriteEscaping:
		return "EscapingWrite"
	case EffAlloc:
		return "Alloc"
	case EffMayThrow:
		return "MayThrow"
	case EffJNI:
		return "JNI"
	case EffIO:
		return "IO"
	case EffNonDet:
		return "NonDet"
	}
	return "?"
}

// String renders the effect set compactly, e.g. "ReadOnly" or
// "EscapingWrite+Alloc|IO,NonDet". Pure is "Pure".
func (e Effect) String() string {
	if e == EffPure {
		return "Pure"
	}
	var b strings.Builder
	b.WriteString(e.Class().String())
	if e&EffAlloc != 0 {
		b.WriteString("+Alloc")
	}
	if hz := e.Hazards(); len(hz) > 0 {
		b.WriteByte('|')
		for i, h := range hz {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(bitName(h))
		}
	}
	return b.String()
}

// sortMethods sorts a method-id slice ascending (deterministic reporting).
func sortMethods(ids []dex.MethodID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
