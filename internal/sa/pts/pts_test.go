package pts_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"replayopt/internal/apps"
	"replayopt/internal/dex"
	"replayopt/internal/minic"
	"replayopt/internal/sa"
	"replayopt/internal/sa/pts"
)

func analyzeSource(t *testing.T, src string) *sa.Result {
	t.Helper()
	prog, err := minic.CompileSource("ptstest", src)
	if err != nil {
		t.Fatal(err)
	}
	static := sa.Analyze(prog)
	pts.Attach(static)
	return static
}

func methodID(t *testing.T, static *sa.Result, name string) dex.MethodID {
	t.Helper()
	id, ok := static.Prog.MethodByName(name)
	if !ok {
		t.Fatalf("method %s not found", name)
	}
	return id
}

// TestModRefJoinsCallees checks the core contract: a caller's mod summary
// includes the locations its callees write, so a call to a static-writing
// helper is visible through the caller's own summary.
func TestModRefJoinsCallees(t *testing.T) {
	static := analyzeSource(t, `
global int counter;
func bump() { counter = counter + 1; }
func twice() { bump(); bump(); }
func pure(int x) int { return x * 2; }
func main() int { twice(); return pure(counter); }`)
	al := static.Alias
	if al == nil {
		t.Fatal("Attach left static.Alias nil")
	}
	mr := al.ModRef[methodID(t, static, "twice")]
	if mr.Mod.Top {
		t.Fatal("twice has top mod set; expected the precise static slot")
	}
	if mr.Mod.Len() == 0 {
		t.Error("twice's mod set is empty; bump's static store did not join up")
	}
	pureMr := al.ModRef[methodID(t, static, "pure")]
	if pureMr.Mod.Top || pureMr.Mod.Len() != 0 {
		t.Errorf("pure's mod set = %s, want empty", pureMr.Mod)
	}
	if pureMr.Ref.Top || pureMr.Ref.Len() != 0 {
		t.Errorf("pure's ref set = %s, want empty (reads only params)", pureMr.Ref)
	}
}

// TestEscapeThroughCallee: passing an allocation to a callee that publishes
// it must mark the site escaping; passing it to one that only reads must not.
func TestEscapeThroughCallee(t *testing.T) {
	static := analyzeSource(t, `
global int[] published;
func publish(int[] a) { published = a; }
func consume(int[] a) int { return a[0]; }
func maker() int {
	int[] x = new int[4];
	int[] y = new int[4];
	publish(x);
	return consume(y);
}
func main() int { return maker(); }`)
	al := static.Alias
	id := methodID(t, static, "maker")
	var verdicts []bool
	for _, s := range al.Sites {
		if s.Method == id {
			verdicts = append(verdicts, al.SiteEscapes(s))
		}
	}
	if len(verdicts) != 2 {
		t.Fatalf("maker has %d recorded sites, want 2", len(verdicts))
	}
	// Sites are ordered by pc: x's allocation precedes y's.
	if !verdicts[0] {
		t.Error("x is stored to a global by publish() but reported non-escaping")
	}
	if verdicts[1] {
		t.Error("y is only read by consume() but reported escaping")
	}
}

// TestUncompilableCalleeForcesTop: calling a method the analysis cannot build
// SSA for must push the caller's mod/ref to top.
func TestUncompilableCalleeForcesTop(t *testing.T) {
	static := analyzeSource(t, `
global int g;
@uncompilable
func weird() int { g = 5; return g; }
func caller() int { return weird(); }
func main() int { return caller(); }`)
	mr := static.Alias.ModRef[methodID(t, static, "caller")]
	if !mr.Mod.Top || !mr.Ref.Top {
		t.Errorf("caller mod/ref = %s/%s, want top (uncompilable callee)", mr.Mod, mr.Ref)
	}
}

// TestRecursionConverges: a self-recursive heap writer must reach a fixpoint
// (the SCC driver's round cap guards divergence) and still expose a sound,
// non-panicking summary.
func TestRecursionConverges(t *testing.T) {
	static := analyzeSource(t, `
global int depth;
func walk(int n) int {
	depth = depth + 1;
	if (n <= 0) { return 0; }
	return walk(n - 1) + 1;
}
func main() int { return walk(10) + depth; }`)
	mr := static.Alias.ModRef[methodID(t, static, "walk")]
	if !mr.Mod.Top && mr.Mod.Len() == 0 {
		t.Error("recursive walk writes a static but its mod set is empty")
	}
}

// TestVirtualFanOut: a virtual call joins the mod sets of every CHA/RTA
// implementation of the declared target.
func TestVirtualFanOut(t *testing.T) {
	static := analyzeSource(t, `
global int a;
global int b;
class Base { func poke() { a = 1; } }
class Sub extends Base { func poke() { b = 2; } }
func caller(Base o) { o.poke(); }
func main() int {
	Base o = new Base();
	if (itof(3) > 1.0) { o = new Sub(); }
	caller(o);
	return a + b;
}`)
	mr := static.Alias.ModRef[methodID(t, static, "caller")]
	if mr.Mod.Top {
		t.Fatal("caller mod is top; virtual fan-out should stay precise")
	}
	if mr.Mod.Len() < 2 {
		t.Errorf("caller mod set has %d locations, want both implementations' statics", mr.Mod.Len())
	}
}

// TestAttachDeterministic: two attachments over the same program must produce
// byte-identical summaries, verdicts, and reports — the property that keeps
// GA search traces reproducible with alias analysis on.
func TestAttachDeterministic(t *testing.T) {
	app, err := apps.Build(apps.ScratchSpec())
	if err != nil {
		t.Fatal(err)
	}
	encode := func() ([]byte, []byte) {
		static := sa.Analyze(app.Prog)
		pts.Attach(static)
		type verdict struct {
			Site sa.AllocSite
			Esc  bool
		}
		var verdicts []verdict
		for _, s := range static.Alias.Sites {
			verdicts = append(verdicts, verdict{s, static.Alias.SiteEscapes(s)})
		}
		sums, err := json.Marshal(struct {
			ModRef      []sa.ModRefSummary
			ParamEscape []uint64
			Verdicts    []verdict
		}{static.Alias.ModRef, static.Alias.ParamEscape, verdicts})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := json.Marshal(pts.BuildReport("ScratchFilter", static, nil))
		if err != nil {
			t.Fatal(err)
		}
		return sums, rep
	}
	s1, r1 := encode()
	s2, r2 := encode()
	if !bytes.Equal(s1, s2) {
		t.Error("summaries differ between two Attach runs")
	}
	if !bytes.Equal(r1, r2) {
		t.Error("reports differ between two BuildReport runs")
	}
}

// TestScratchAppVerdicts pins the diagnostic app's designed facts: the
// kernel's per-round histogram is non-escaping, the img/out arrays escape.
func TestScratchAppVerdicts(t *testing.T) {
	app, err := apps.Build(apps.ScratchSpec())
	if err != nil {
		t.Fatal(err)
	}
	static := sa.Analyze(app.Prog)
	pts.Attach(static)
	sites, nonEscaping, bounded := pts.Stats(static.Alias)
	if sites == 0 || bounded == 0 {
		t.Fatalf("stats: %d sites, %d bounded methods", sites, bounded)
	}
	if nonEscaping == 0 {
		t.Error("the scratch histogram should be proven non-escaping")
	}
	if nonEscaping >= sites {
		t.Error("img/out escape to globals; not every site can be local")
	}
}

// TestReportSchema round-trips a report through JSON and the structural
// validator (the aliaslint -json -validate path), then corrupts it in each
// way the schema forbids.
func TestReportSchema(t *testing.T) {
	app, err := apps.Build(apps.ScratchSpec())
	if err != nil {
		t.Fatal(err)
	}
	static := sa.Analyze(app.Prog)
	pts.Attach(static)
	var hot []dex.MethodID
	for i := range app.Prog.Methods {
		hot = append(hot, dex.MethodID(i))
	}
	rep := pts.BuildReport("ScratchFilter", static, hot)
	if rep.Totals.Pairs == 0 {
		t.Fatal("scratch app has no candidate pairs; schema cases below assume some")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := pts.ValidateReportJSON(data); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	corrupt := func(name string, mutate func(doc map[string]any), wantErr string) {
		t.Helper()
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		mutate(doc)
		bad, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		err = pts.ValidateReportJSON(bad)
		if err == nil {
			t.Errorf("%s: corrupted report accepted", name)
			return
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantErr)
		}
	}
	firstMethod := func(doc map[string]any) map[string]any {
		return doc["methods"].([]any)[0].(map[string]any)
	}
	corrupt("wrong schema version", func(doc map[string]any) {
		doc["schema_version"] = 99
	}, "schema_version")
	corrupt("missing app", func(doc map[string]any) {
		delete(doc, "app")
	}, "app")
	corrupt("proven exceeds pairs", func(doc map[string]any) {
		m := firstMethod(doc)
		m["proven"] = m["pairs"].(float64) + 1
	}, "proves more")
	corrupt("totals drift", func(doc map[string]any) {
		doc["totals"].(map[string]any)["pairs"] = 9999.0
	}, "totals.pairs")
	corrupt("negative count", func(doc map[string]any) {
		firstMethod(doc)["sites"] = -1.0
	}, "nonnegative")
}
