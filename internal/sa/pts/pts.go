// Package pts computes interprocedural points-to facts over the CHA/RTA call
// graph: for every method, a mod/ref location summary (which statics, field
// slots, and array-element classes it and its transitive callees may read or
// write, with virtual fan-out via ImplsOf), parameter-escape bits, and an
// escape verdict for every allocation site. The summaries feed the
// intraprocedural Andersen engine in internal/lir (AnalyzeAlias), which the
// alias-aware memory passes — storeforward, dse, licm, stackalloc, the §3.5
// search space widened — consume, and which the verify map uses to elide
// stores into provably non-escaping allocations.
//
// The package sits above both internal/sa (summary types, call graph, SCC
// condensation) and internal/lir (SSA construction and the per-function
// engine): sa cannot import lir, so the driver that needs both lives here and
// hands its result back via Attach(static), same shape as internal/sa/vra.
// One difference from vra matters: vra's summaries start at top and only
// narrow, so its in-progress states are sound to read early; this analysis
// starts optimistic (empty mod/ref, nothing escapes) and is sound only at the
// fixpoint, so Attach must finish every component before anything reads
// static.Alias. core.prepare runs it sequentially before any pass does.
// Everything is deterministic — a pure function of the program — so attaching
// summaries never perturbs lir.Config fingerprints or GA search traces.
package pts

import (
	"replayopt/internal/dex"
	"replayopt/internal/lir"
	"replayopt/internal/sa"
)

// Attach computes interprocedural alias summaries for static.Prog and stores
// them in static.Alias, where the alias-aware lir passes read them.
// Idempotent and deterministic: calling it again recomputes byte-identical
// summaries.
func Attach(static *sa.Result) {
	prog := static.Prog
	n := len(prog.Methods)
	al := sa.NewAliasSummaries(n)
	// The working structure is attached before the fixpoint so the engine's
	// Summarize can read callee summaries through static.Alias. Unlike vra,
	// in-progress states here UNDER-approximate (optimistic start), so no
	// other reader may observe static.Alias until Attach returns.
	static.Alias = al

	fns := buildSSACache(prog)
	for i := range prog.Methods {
		if fns[i] == nil {
			al.ModRef[i] = sa.TopModRef()
			al.ParamEscape[i] = ^uint64(0)
		}
	}

	// Reverse-topological components: callees reach their fixpoint before
	// any caller summarizes, so each SCC only iterates over its own cycle.
	_, comps := sa.Condense(n, func(v dex.MethodID) []dex.MethodID {
		return static.Graph.Callees[v]
	})
	for _, c := range comps {
		// A summary can only grow, and each member's extraction is monotone
		// in the summaries it reads, so joining until nothing changes is a
		// fixpoint. The round cap is a safety net (the location and escape
		// lattices are tiny); a component that somehow exceeds it tops out.
		maxRounds := 4*len(c) + 4
		for round := 0; ; round++ {
			if round == maxRounds {
				for _, m := range c {
					al.ModRef[m] = sa.TopModRef()
					al.ParamEscape[m] = ^uint64(0)
				}
				break
			}
			changed := false
			for _, m := range c {
				if fns[m] == nil {
					continue
				}
				sum, pe := lir.AnalyzeAlias(fns[m], static).Summarize()
				if al.ModRef[m].Mod.AddSet(sum.Mod) {
					changed = true
				}
				if al.ModRef[m].Ref.AddSet(sum.Ref) {
					changed = true
				}
				if al.ParamEscape[m]|pe != al.ParamEscape[m] {
					al.ParamEscape[m] |= pe
					changed = true
				}
			}
			if !changed {
				break
			}
			// A singleton without a self-loop cannot feed itself: its first
			// extraction is already final.
			if len(c) == 1 && !selfRecursive(static, c[0]) {
				break
			}
		}
	}

	// Final pass against the stabilized summaries: per-site escape verdicts.
	// Sites of unanalyzable methods stay unknown (SiteEscapes answers true).
	for i := range prog.Methods {
		if fns[i] == nil {
			continue
		}
		lir.AnalyzeAlias(fns[i], static).SiteVerdicts(al.SetSite)
	}
}

// selfRecursive reports whether m appears in its own callee list.
func selfRecursive(static *sa.Result, m dex.MethodID) bool {
	for _, c := range static.Graph.Callees[m] {
		if c == m {
			return true
		}
	}
	return false
}

// buildSSACache constructs SSA once per analyzable method. Uncompilable
// methods and frontend failures yield nil — their summaries top out and their
// allocation sites conservatively escape.
func buildSSACache(prog *dex.Program) []*lir.Function {
	fns := make([]*lir.Function, len(prog.Methods))
	for i := range prog.Methods {
		if prog.Methods[i].Uncompilable {
			continue
		}
		if f, err := lir.BuildSSA(prog, dex.MethodID(i)); err == nil {
			fns[i] = f
		}
	}
	return fns
}

// Stats summarizes an attached result for observability spans and report
// totals: allocation sites analyzed, the subset proven non-escaping, and
// methods whose mod summary is narrower than top.
func Stats(al *sa.AliasSummaries) (sites, nonEscaping, boundedMethods int) {
	if al == nil {
		return 0, 0, 0
	}
	for _, s := range al.Sites {
		sites++
		if !al.SiteEscapes(s) {
			nonEscaping++
		}
	}
	for i := range al.ModRef {
		if !al.ModRef[i].Mod.Top {
			boundedMethods++
		}
	}
	return sites, nonEscaping, boundedMethods
}
