package pts

import (
	"encoding/json"
	"fmt"

	"replayopt/internal/dex"
	"replayopt/internal/lir"
	"replayopt/internal/sa"
)

// ReportSchemaVersion identifies the aliaslint JSON layout. Bump on any
// incompatible change.
const ReportSchemaVersion = 1

// maxWitnesses bounds the unproven-pair obligations listed per hot method;
// the counts always cover every pair.
const maxWitnesses = 12

// Report is the aliaslint audit of one app: per method, how many same-kind
// access pairs — the pairs the alias-blind memory passes must assume conflict
// — the points-to analysis proves apart, plus allocation-site escape
// verdicts, with a witness obligation for every hot-region pair it cannot
// separate.
type Report struct {
	SchemaVersion int            `json:"schema_version"`
	App           string         `json:"app"`
	Methods       []MethodReport `json:"methods"`
	Totals        Totals         `json:"totals"`
}

// MethodReport covers one analyzable method that contains at least one
// candidate pair or allocation site.
type MethodReport struct {
	Method string `json:"method"`
	// Hot marks membership in the app's replayable hot region — the code
	// the search actually compiles, where an unproven pair blocks DSE,
	// forwarding, and hoisting on every replay.
	Hot bool `json:"hot"`
	// Pairs counts same-kind access pairs with at least one store (the
	// may-alias assumptions a kind-matching pass makes); Proven the subset
	// the analysis disambiguates.
	Pairs  int `json:"pairs"`
	Proven int `json:"proven"`
	// Sites counts allocation sites, NonEscaping the subset proven local.
	Sites       int       `json:"sites"`
	NonEscaping int       `json:"non_escaping"`
	Witnesses   []Witness `json:"witnesses,omitempty"`
}

// Witness names one unproven hot-region pair with the shape facts the
// analysis did establish, so a reader can see what is missing for the proof.
type Witness struct {
	Block string `json:"block"`
	// Expr is the failed obligation, e.g. "v7 (elem store) ~ v12 (elem
	// load): bases may overlap".
	Expr string `json:"expr"`
}

// Totals aggregates the per-method rows plus the interprocedural summary
// counts (methods whose mod set is narrower than top).
type Totals struct {
	Methods        int `json:"methods"`
	HotMethods     int `json:"hot_methods"`
	Pairs          int `json:"pairs"`
	Proven         int `json:"proven"`
	Sites          int `json:"sites"`
	NonEscaping    int `json:"non_escaping"`
	BoundedMethods int `json:"bounded_methods"`
}

// isStore reports a memory-write access.
func isStore(v *lir.Value) bool {
	switch v.Op {
	case lir.OpArrStore, lir.OpFieldStore, lir.OpStaticStore:
		return true
	}
	return false
}

// isAccess reports any memory load or store.
func isAccess(v *lir.Value) bool {
	switch v.Op {
	case lir.OpArrLoad, lir.OpArrStore, lir.OpFieldLoad, lir.OpFieldStore,
		lir.OpStaticLoad, lir.OpStaticStore:
		return true
	}
	return false
}

// accessKind buckets an access the way the blind passes do (array element,
// field, static) — pairs across buckets were never assumed to conflict.
func accessKind(v *lir.Value) int {
	switch v.Op {
	case lir.OpArrLoad, lir.OpArrStore:
		return 0
	case lir.OpFieldLoad, lir.OpFieldStore:
		return 1
	}
	return 2
}

// BuildReport audits static.Prog under the summaries already attached to
// static (call Attach first). hot lists the method ids of the app's hot
// region (nil when the app has none). Deterministic: methods by id, accesses
// and pairs in program order.
func BuildReport(app string, static *sa.Result, hot []dex.MethodID) *Report {
	rep := &Report{SchemaVersion: ReportSchemaVersion, App: app}
	inHot := map[dex.MethodID]bool{}
	for _, id := range hot {
		inHot[id] = true
	}
	for i, m := range static.Prog.Methods {
		if m.Uncompilable {
			continue
		}
		f, err := lir.BuildSSA(static.Prog, dex.MethodID(i))
		if err != nil {
			continue
		}
		fx := lir.AnalyzeAlias(f, static)
		mr := MethodReport{Method: m.Name, Hot: inHot[dex.MethodID(i)]}

		type acc struct {
			v *lir.Value
			b *lir.Block
		}
		var accesses []acc
		for _, b := range f.Blocks {
			for _, v := range b.Insns {
				if isAccess(v) {
					accesses = append(accesses, acc{v, b})
				}
				if v.Op == lir.OpNewArray || v.Op == lir.OpNewObject {
					mr.Sites++
					if !fx.Escapes(v) {
						mr.NonEscaping++
					}
				}
			}
		}
		for x := 0; x < len(accesses); x++ {
			for y := x + 1; y < len(accesses); y++ {
				a, b := accesses[x], accesses[y]
				if !isStore(a.v) && !isStore(b.v) {
					continue
				}
				if accessKind(a.v) != accessKind(b.v) {
					continue
				}
				mr.Pairs++
				if !fx.MayAlias(a.v, b.v) {
					mr.Proven++
				} else if mr.Hot && len(mr.Witnesses) < maxWitnesses {
					mr.Witnesses = append(mr.Witnesses, Witness{
						Block: fmt.Sprintf("b%d", a.b.ID),
						Expr:  witnessExpr(a.v, b.v),
					})
				}
			}
		}
		if mr.Pairs == 0 && mr.Sites == 0 {
			continue
		}
		rep.Methods = append(rep.Methods, mr)
		rep.Totals.Methods++
		if mr.Hot {
			rep.Totals.HotMethods++
		}
		rep.Totals.Pairs += mr.Pairs
		rep.Totals.Proven += mr.Proven
		rep.Totals.Sites += mr.Sites
		rep.Totals.NonEscaping += mr.NonEscaping
	}
	_, _, rep.Totals.BoundedMethods = Stats(static.Alias)
	return rep
}

// witnessExpr renders the unmet obligation of one pair: the access shapes and
// why they could not be separated.
func witnessExpr(a, b *lir.Value) string {
	role := func(v *lir.Value) string {
		k := [...]string{"elem", "field", "static"}[accessKind(v)]
		if isStore(v) {
			return k + " store"
		}
		return k + " load"
	}
	reason := "bases may overlap"
	if accessKind(a) == 2 {
		reason = "same static slot"
	}
	return fmt.Sprintf("v%d (%s) ~ v%d (%s): %s", a.ID, role(a), b.ID, role(b), reason)
}

// ValidateReportJSON checks that data is a structurally valid aliaslint
// report: schema version, required keys with the right JSON types, and the
// cross-field invariants (totals reconcile with the rows, proven counts never
// exceed pair counts). Mirrors vra.ValidateReportJSON for rangelint.
func ValidateReportJSON(data []byte) error {
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("aliaslint report: %w", err)
	}
	num := func(m map[string]any, key string) (int, error) {
		v, ok := m[key]
		if !ok {
			return 0, fmt.Errorf("aliaslint report: missing %q", key)
		}
		f, ok := v.(float64)
		if !ok || f != float64(int(f)) || f < 0 {
			return 0, fmt.Errorf("aliaslint report: %q is not a nonnegative integer", key)
		}
		return int(f), nil
	}
	sv, err := num(raw, "schema_version")
	if err != nil {
		return err
	}
	if sv != ReportSchemaVersion {
		return fmt.Errorf("aliaslint report: schema_version %d, want %d", sv, ReportSchemaVersion)
	}
	if _, ok := raw["app"].(string); !ok {
		return fmt.Errorf("aliaslint report: missing or non-string %q", "app")
	}
	tot, ok := raw["totals"].(map[string]any)
	if !ok {
		return fmt.Errorf("aliaslint report: missing %q object", "totals")
	}
	want := map[string]int{}
	for _, key := range []string{"methods", "hot_methods", "pairs", "proven",
		"sites", "non_escaping", "bounded_methods"} {
		n, err := num(tot, key)
		if err != nil {
			return err
		}
		want[key] = n
	}
	methods, ok := raw["methods"].([]any)
	if !ok && raw["methods"] != nil {
		return fmt.Errorf("aliaslint report: %q is not an array", "methods")
	}
	got := map[string]int{}
	for i, el := range methods {
		m, ok := el.(map[string]any)
		if !ok {
			return fmt.Errorf("aliaslint report: methods[%d] is not an object", i)
		}
		if _, ok := m["method"].(string); !ok {
			return fmt.Errorf("aliaslint report: methods[%d] missing %q", i, "method")
		}
		hot, ok := m["hot"].(bool)
		if !ok {
			return fmt.Errorf("aliaslint report: methods[%d] missing boolean %q", i, "hot")
		}
		row := map[string]int{}
		for _, key := range []string{"pairs", "proven", "sites", "non_escaping"} {
			n, err := num(m, key)
			if err != nil {
				return fmt.Errorf("methods[%d]: %w", i, err)
			}
			row[key] = n
		}
		if row["proven"] > row["pairs"] || row["non_escaping"] > row["sites"] {
			return fmt.Errorf("aliaslint report: methods[%d] proves more than it has", i)
		}
		got["methods"]++
		if hot {
			got["hot_methods"]++
		}
		for _, key := range []string{"pairs", "proven", "sites", "non_escaping"} {
			got[key] += row[key]
		}
	}
	for _, key := range []string{"methods", "hot_methods", "pairs", "proven", "sites", "non_escaping"} {
		if got[key] != want[key] {
			return fmt.Errorf("aliaslint report: totals.%s = %d but rows sum to %d", key, want[key], got[key])
		}
	}
	return nil
}
