package sa_test

import (
	"reflect"
	"testing"

	"replayopt/internal/dex"
	"replayopt/internal/minic"
	"replayopt/internal/profile"
	"replayopt/internal/sa"
)

func compile(t *testing.T, src string) *dex.Program {
	t.Helper()
	prog, err := minic.CompileSource("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func mid(t *testing.T, prog *dex.Program, name string) dex.MethodID {
	t.Helper()
	id, ok := prog.MethodByName(name)
	if !ok {
		t.Fatalf("no method %q", name)
	}
	return id
}

func TestEffectLattice(t *testing.T) {
	if sa.EffPure.Class() != sa.ClassPure || !sa.EffPure.Replayable() {
		t.Fatal("bottom is not Pure/replayable")
	}
	e := sa.EffReadHeap.Join(sa.EffWriteLocal)
	if e.Class() != sa.ClassLocalWrite {
		t.Fatalf("ReadHeap|WriteLocal class = %v", e.Class())
	}
	if !sa.EffReadHeap.Leq(e) || e.Leq(sa.EffReadHeap) {
		t.Fatal("Leq is not bit inclusion")
	}
	if (e | sa.EffWriteEscaping).Class() != sa.ClassEscapingWrite {
		t.Fatal("EscapingWrite does not dominate")
	}
	if !e.Replayable() {
		t.Fatal("writes must not disqualify replay")
	}
	for _, h := range []sa.Effect{sa.EffIO, sa.EffNonDet, sa.EffJNI, sa.EffMayThrow} {
		if (e | h).Replayable() {
			t.Fatalf("hazard %v not detected", h)
		}
	}
	got := (sa.EffWriteEscaping | sa.EffAlloc | sa.EffIO | sa.EffNonDet).String()
	if got != "EscapingWrite+Alloc|IO,NonDet" {
		t.Fatalf("String() = %q", got)
	}
	if sa.EffPure.String() != "Pure" {
		t.Fatalf("Pure String() = %q", sa.EffPure.String())
	}
}

// Mutually recursive methods form one SCC and share a joined summary; the
// fixpoint must converge in a single condensation pass.
const mutualSrc = `
func even(int n) int { if (n == 0) { return 1; } return odd(n - 1); }
func odd(int n) int { if (n == 0) { return 0; } return even(n - 1); }
func hazard(int n) int { print_int(n); return n; }
func driver(int n) int { if (n > 5) { return hazard(n); } return even(n); }
func main() int { return driver(4); }
`

func TestMutualRecursionSCC(t *testing.T) {
	prog := compile(t, mutualSrc)
	r := sa.Analyze(prog)
	even, odd := mid(t, prog, "even"), mid(t, prog, "odd")
	if r.Summary[even] != r.Summary[odd] {
		t.Fatalf("SCC members disagree: even=%v odd=%v", r.Summary[even], r.Summary[odd])
	}
	if !r.Replayable(even) || r.Summary[even].Class() != sa.ClassPure {
		t.Fatalf("even/odd should be pure, got %v", r.Summary[even])
	}
	driver := mid(t, prog, "driver")
	if r.Replayable(driver) {
		t.Fatal("driver reaches print_int and must not be replayable")
	}
	if r.Summary[driver]&sa.EffIO == 0 {
		t.Fatalf("driver summary %v lacks IO", r.Summary[driver])
	}
}

func TestWitnessChain(t *testing.T) {
	prog := compile(t, mutualSrc)
	r := sa.Analyze(prog)
	driver, hazard := mid(t, prog, "driver"), mid(t, prog, "hazard")
	chain := r.Witness(driver, sa.EffIO)
	want := []dex.MethodID{driver, hazard}
	if !reflect.DeepEqual(chain, want) {
		t.Fatalf("witness = %v, want %v", chain, want)
	}
	if cause := r.LocalCause(hazard, sa.EffIO); cause != `calls native "IO.printInt"` {
		t.Fatalf("cause = %q", cause)
	}
	// main -> driver -> hazard: shortest chain has three hops.
	if chain := r.Witness(prog.Entry, sa.EffIO); len(chain) != 3 {
		t.Fatalf("entry witness = %v", chain)
	}
	// A replayable method has no witness.
	if chain := r.Witness(mid(t, prog, "even"), sa.EffIO); chain != nil {
		t.Fatalf("even witness = %v", chain)
	}
}

const dispatchSrc = `
class Shape { func area(int s) int { return s * s; } }
class Circle extends Shape { func area(int s) int { return s * s * 3; } }
func poly(Shape sh, int s) int { return sh.area(s); }
func main() int {
	Shape a = new Circle();
	return poly(a, 3);
}
`

const dispatchBothSrc = `
class Shape { func area(int s) int { return s * s; } }
class Circle extends Shape { func area(int s) int { return s * s * 3; } }
func poly(Shape sh, int s) int { return sh.area(s); }
func main() int {
	Shape a = new Circle();
	Shape b = new Shape();
	return poly(a, 3) + poly(b, 2);
}
`

func TestVirtualDispatchTargets(t *testing.T) {
	// Only Circle is instantiated: the virtual call has exactly one
	// reachable target and qualifies for guard-free devirtualization.
	prog := compile(t, dispatchSrc)
	r := sa.Analyze(prog)
	decl := mid(t, prog, "Shape.area")
	target, ok := r.Graph.MonoTarget(decl)
	if !ok || target != mid(t, prog, "Circle.area") {
		t.Fatalf("MonoTarget = %v, %v; want Circle.area", target, ok)
	}

	// Both classes instantiated: two targets, no guard-free rewrite.
	prog2 := compile(t, dispatchBothSrc)
	r2 := sa.Analyze(prog2)
	decl2 := mid(t, prog2, "Shape.area")
	impls := r2.Graph.ImplsOf(decl2)
	if len(impls) != 2 {
		t.Fatalf("ImplsOf = %v, want 2 targets", impls)
	}
	if _, ok := r2.Graph.MonoTarget(decl2); ok {
		t.Fatal("MonoTarget must fail with two instantiated overrides")
	}
}

// Two unrelated class hierarchies whose virtual methods land on the same
// vtable slot. The legacy blocklist call graph (dex.Program.Callees) resolves
// a virtual call through slot N of *every* class, so kernel appears to reach
// Hud.flush's IO; the CHA/RTA graph restricts dispatch to Blend's subtree.
const slotCollisionSrc = `
class Blend { func apply(int v) int { return v + 1; } }
class Hud { func flush(int v) int { print_int(v); return 0; } }
func kernel(Blend b, int v) int { return b.apply(v); }
func frame(Hud h, int v) int { return h.flush(v); }
func main() int {
	Blend b = new Blend();
	Hud h = new Hud();
	return kernel(b, 5) + frame(h, 1);
}
`

func TestPrecisionOverBlocklist(t *testing.T) {
	prog := compile(t, slotCollisionSrc)
	kernel := mid(t, prog, "kernel")
	blendApply := mid(t, prog, "Blend.apply")
	hudFlush := mid(t, prog, "Hud.flush")

	// Sanity: the slot collision actually occurs and the blocklist rejects.
	if prog.Methods[blendApply].VSlot != prog.Methods[hudFlush].VSlot {
		t.Skip("vtable layout changed; slot collision gone")
	}
	bl := profile.AnalyzeBlocklist(prog)
	if bl.ReplayableDeep[kernel] {
		t.Fatal("expected the blocklist to reject kernel via the slot collision")
	}

	r := sa.Analyze(prog)
	if !r.Replayable(kernel) {
		t.Fatalf("effect analysis rejects kernel: %v", r.Summary[kernel])
	}
	for _, c := range r.Graph.Callees[kernel] {
		if c == hudFlush {
			t.Fatal("CHA graph leaked the unrelated hierarchy")
		}
	}
	if !r.Replayable(blendApply) {
		t.Fatalf("Blend.apply not replayable: %v", r.Summary[blendApply])
	}
}

// Differential soundness on every precision case: each method the blocklist
// accepts must stay accepted by the effect analysis.
func TestBlocklistSubset(t *testing.T) {
	for _, src := range []string{mutualSrc, dispatchSrc, dispatchBothSrc, slotCollisionSrc, freshSrc, jniSrc} {
		prog := compile(t, src)
		bl := profile.AnalyzeBlocklist(prog)
		r := sa.Analyze(prog)
		for id := range prog.Methods {
			if bl.ReplayableDeep[id] && !r.Replayable(dex.MethodID(id)) {
				t.Errorf("%s: blocklist accepts %s, effects reject (%v)",
					prog.Name, prog.Methods[id].Name, r.Summary[id])
			}
		}
	}
}

const freshSrc = `
global int[] buf;
func scratch(int n) int {
	int[] tmp = new int[n];
	for (int i = 0; i < n; i = i + 1) { tmp[i] = i * i; }
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + tmp[i]; }
	return s;
}
func globalWrite(int n) int { buf[0] = n; return buf[0]; }
func paramWrite(int[] a, int n) int { a[0] = n; return a[0]; }
func main() int {
	buf = new int[4];
	int[] x = new int[4];
	return scratch(8) + globalWrite(2) + paramWrite(x, 1);
}
`

func TestFreshnessClassification(t *testing.T) {
	prog := compile(t, freshSrc)
	r := sa.Analyze(prog)
	cases := []struct {
		name string
		want sa.Class
	}{
		// tmp never escapes scratch: its writes stay local.
		{"scratch", sa.ClassLocalWrite},
		// a store through a global is visible after return.
		{"globalWrite", sa.ClassEscapingWrite},
		// a store through a parameter is visible to the caller.
		{"paramWrite", sa.ClassEscapingWrite},
	}
	for _, c := range cases {
		id := mid(t, prog, c.name)
		if got := r.Local[id].Class(); got != c.want {
			t.Errorf("%s: class %v, want %v (local=%v)", c.name, got, c.want, r.Local[id])
		}
		if !r.Replayable(id) {
			t.Errorf("%s: not replayable: %v", c.name, r.Summary[id])
		}
	}
	if e := r.Local[mid(t, prog, "scratch")]; e&sa.EffAlloc == 0 || e&sa.EffWriteEscaping != 0 {
		t.Errorf("scratch local effects = %v", e)
	}
}

const jniSrc = `
func opaque(int v) int { return jni_mix(v); }
func pure(int v) int { return mini(v, 7); }
func main() int { return opaque(3) + pure(9); }
`

func TestJNIClassification(t *testing.T) {
	prog := compile(t, jniSrc)
	r := sa.Analyze(prog)
	opaque := mid(t, prog, "opaque")
	if r.Replayable(opaque) || r.Summary[opaque]&sa.EffJNI == 0 {
		t.Fatalf("opaque summary = %v, want JNI hazard", r.Summary[opaque])
	}
	if cause := r.LocalCause(opaque, sa.EffJNI); cause != `calls native "Sys.mix"` {
		t.Fatalf("cause = %q", cause)
	}
	// Intrinsic-replaceable math natives are effect-free.
	pure := mid(t, prog, "pure")
	if r.Summary[pure] != sa.EffPure {
		t.Fatalf("pure summary = %v", r.Summary[pure])
	}
}

func TestCondenseOrder(t *testing.T) {
	prog := compile(t, mutualSrc)
	r := sa.Analyze(prog)
	comp, comps := sa.Condense(len(prog.Methods), func(v dex.MethodID) []dex.MethodID {
		return r.Graph.Callees[v]
	})
	even, odd := mid(t, prog, "even"), mid(t, prog, "odd")
	if comp[even] != comp[odd] {
		t.Fatal("mutual recursion split across components")
	}
	// Reverse topological order: every callee's component index is <= the
	// caller's (equal within an SCC).
	for id := range prog.Methods {
		for _, c := range r.Graph.Callees[id] {
			if comp[c] > comp[id] {
				t.Fatalf("callee %d's component after caller %d's", c, id)
			}
		}
	}
	// Components partition the methods.
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != len(prog.Methods) {
		t.Fatalf("components cover %d of %d methods", total, len(prog.Methods))
	}
}

// The analysis is a pure function of the program: two runs agree exactly.
func TestAnalyzeDeterministic(t *testing.T) {
	prog := compile(t, slotCollisionSrc)
	a, b := sa.Analyze(prog), sa.Analyze(prog)
	if !reflect.DeepEqual(a.Summary, b.Summary) || !reflect.DeepEqual(a.Local, b.Local) {
		t.Fatal("effect sets differ across runs")
	}
	for id := range prog.Methods {
		for _, h := range []sa.Effect{sa.EffIO, sa.EffNonDet, sa.EffJNI, sa.EffMayThrow} {
			ca := a.Witness(dex.MethodID(id), h)
			cb := b.Witness(dex.MethodID(id), h)
			if !reflect.DeepEqual(ca, cb) {
				t.Fatalf("witness differs for method %d hazard %v", id, h)
			}
		}
	}
	if !reflect.DeepEqual(a.Graph.Callees, b.Graph.Callees) {
		t.Fatal("call graphs differ across runs")
	}
}
