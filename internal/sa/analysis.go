package sa

import (
	"fmt"

	"replayopt/internal/dex"
)

// Result holds the interprocedural effect analysis of one program.
type Result struct {
	Prog  *dex.Program
	Graph *CallGraph

	// Local[m] is m's intraprocedural effect set: what its own instructions
	// do, with managed calls excluded (those are the interprocedural part).
	Local []Effect
	// Summary[m] is the interprocedural join: Local[m] ∪ the summaries of
	// everything m can transitively call over the precise call graph.
	Summary []Effect

	// Ranges, when non-nil, holds per-method value-range summaries indexed
	// by method id. The analysis that fills it lives in internal/sa/vra
	// (which imports lir to walk SSA; this package must not) and attaches it
	// via vra.Attach. The lir range passes consume it through
	// PassContext.Static, degrading to intraprocedural-only facts when nil.
	Ranges []RangeSummary

	// Alias, when non-nil, holds the program-wide points-to result: per-method
	// mod/ref location summaries, parameter-escape bits, and per-allocation-
	// site escape verdicts. The analysis that fills it lives in
	// internal/sa/pts (which imports lir to walk SSA; this package must not)
	// and attaches it via pts.Attach. The alias-aware memory passes consume it
	// through PassContext.Static, degrading to kind-matching when nil.
	Alias *AliasSummaries

	// comp/comps is the SCC condensation of the call graph (comps in
	// reverse topological order, see Condense).
	comp  []int
	comps [][]dex.MethodID

	// witness[h][m] is the next hop from m along a shortest call chain to a
	// method whose Local effects include hazard h (m itself when m is a
	// local source, NoWitness when m cannot reach one).
	witness map[Effect][]dex.MethodID
}

// NoWitness marks the absence of a witness next-hop.
const NoWitness dex.MethodID = -1

// Analyze runs the whole analysis: call graph, per-method local effects,
// SCC-condensed summary fixpoint, and hazard witness chains. It is a pure
// function of prog and deterministic (all iteration is over sorted slices).
func Analyze(prog *dex.Program) *Result {
	r := &Result{Prog: prog, Graph: BuildGraph(prog)}
	n := len(prog.Methods)
	r.Local = make([]Effect, n)
	for i, m := range prog.Methods {
		r.Local[i] = localEffects(prog, m)
	}
	r.comp, r.comps = Condense(n, func(v dex.MethodID) []dex.MethodID {
		return r.Graph.Callees[v]
	})

	// Summary fixpoint in one pass: comps is in reverse topological order,
	// so every callee outside the current SCC already has its final
	// summary, and within an SCC all members share the joined effect set
	// (each can reach every other).
	r.Summary = make([]Effect, n)
	for _, c := range r.comps {
		var e Effect
		for _, m := range c {
			e = e.Join(r.Local[m])
			for _, callee := range r.Graph.Callees[m] {
				if r.comp[callee] != r.comp[m] {
					e = e.Join(r.Summary[callee])
				}
			}
		}
		for _, m := range c {
			r.Summary[m] = e
		}
	}

	// Witness next-hops: per hazard, a multi-source BFS from the local
	// sources over the reverse call graph reaches exactly the methods whose
	// summary carries the hazard, labelling each with its next hop along a
	// shortest chain. First assignment wins; queue order and the sorted
	// Callers lists make the choice deterministic.
	r.witness = make(map[Effect][]dex.MethodID, len(hazardOrder))
	for _, h := range hazardOrder {
		next := make([]dex.MethodID, n)
		var queue []dex.MethodID
		for i := range next {
			if r.Local[i]&h != 0 {
				next[i] = dex.MethodID(i)
				queue = append(queue, dex.MethodID(i))
			} else {
				next[i] = NoWitness
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, caller := range r.Graph.Callers[v] {
				if next[caller] == NoWitness {
					next[caller] = v
					queue = append(queue, caller)
				}
			}
		}
		r.witness[h] = next
	}
	return r
}

// Replayable reports whether method id's whole call tree is free of §3.1
// hazards under the precise call graph.
func (r *Result) Replayable(id dex.MethodID) bool { return r.Summary[id].Replayable() }

// Witness returns a shortest call chain from id to a method whose own
// instructions introduce hazard (the chain ends at the source; a local source
// is its own one-element chain). Nil when id's summary does not carry hazard.
func (r *Result) Witness(id dex.MethodID, hazard Effect) []dex.MethodID {
	next, ok := r.witness[hazard]
	if !ok || r.Summary[id]&hazard == 0 || next[id] == NoWitness {
		return nil
	}
	chain := []dex.MethodID{id}
	for cur := id; r.Local[cur]&hazard == 0 && len(chain) <= len(next); {
		cur = next[cur]
		chain = append(chain, cur)
	}
	return chain
}

// LocalCause names the instruction that introduces hazard in method id's own
// body, e.g. `calls native "IO.drawFrame"` or "throw at pc 12". Empty when id
// is not a local source of hazard.
func (r *Result) LocalCause(id dex.MethodID, hazard Effect) string {
	if r.Local[id]&hazard == 0 {
		return ""
	}
	m := r.Prog.Methods[id]
	for pc, in := range m.Code {
		switch in.Op {
		case dex.OpInvokeNative:
			nt := r.Prog.Natives[in.Sym]
			if nativeEffect(nt)&hazard != 0 {
				return fmt.Sprintf("calls native %q", nt.Name)
			}
		case dex.OpThrow:
			if hazard == EffMayThrow {
				return fmt.Sprintf("throw at pc %d", pc)
			}
		}
	}
	if hazard == EffMayThrow && m.HasThrow {
		return "marked HasThrow"
	}
	return ""
}

// nativeEffect classifies a native exactly as the §3.1 blocklist does: I/O
// and clock/PRNG natives keep their own bits, any other non-intrinsic native
// is JNI, and intrinsic-replaceable math is pure.
func nativeEffect(nt *dex.Native) Effect {
	switch {
	case nt.IO:
		return EffIO
	case nt.NonDet:
		return EffNonDet
	case nt.Intrinsic == dex.IntrinsicNone:
		return EffJNI
	}
	return EffPure
}

// localEffects computes the intraprocedural effect set of m: loads, stores
// (split local/escaping by the freshness dataflow below), allocations,
// throws, and native hazards. Managed calls contribute nothing here. Hazards
// are counted syntactically (even in unreachable code), matching the §3.1
// blocklist exactly so no blocklist-accepted method can turn hazardous here.
func localEffects(prog *dex.Program, m *dex.Method) Effect {
	fresh := freshSets(prog, m)
	var e Effect
	for pc, in := range m.Code {
		switch in.Op {
		case dex.OpALoadInt, dex.OpALoadFloat, dex.OpALoadRef,
			dex.OpFLoadInt, dex.OpFLoadFloat, dex.OpFLoadRef,
			dex.OpSLoadInt, dex.OpSLoadFloat, dex.OpSLoadRef,
			dex.OpArrayLen:
			e |= EffReadHeap
		case dex.OpNewInstance, dex.OpNewArrayInt, dex.OpNewArrayFloat, dex.OpNewArrayRef:
			e |= EffAlloc
		case dex.OpAStoreInt, dex.OpAStoreFloat, dex.OpAStoreRef,
			dex.OpFStoreInt, dex.OpFStoreFloat, dex.OpFStoreRef:
			// Base register is B for both array and field stores. An
			// unreachable store (fresh[pc] == nil) never executes, so it
			// contributes no write at all.
			switch {
			case fresh[pc] == nil:
			case fresh[pc][in.B]:
				e |= EffWriteLocal
			default:
				e |= EffWriteEscaping
			}
		case dex.OpSStoreInt, dex.OpSStoreFloat, dex.OpSStoreRef:
			e |= EffWriteEscaping
		case dex.OpThrow:
			e |= EffMayThrow
		case dex.OpInvokeNative:
			e |= nativeEffect(prog.Natives[in.Sym])
		}
	}
	if m.HasThrow {
		e |= EffMayThrow
	}
	return e
}

// freshSets runs a forward must-dataflow over m's instruction CFG computing,
// for every pc, the registers that *definitely* hold a reference to an
// object allocated in this invocation that has not escaped on any path to
// pc. Writes through such a base touch memory unobservable after m returns —
// the EffWriteLocal classification.
//
// Invariant: every register aliasing a tracked-fresh object carries the bit
// (OpMove copies it; the only other way to duplicate a reference goes
// through memory, and storing a fresh reference is an escape event). An
// escape — a fresh register passed to any call, returned, thrown, or stored
// as a ref value — therefore conservatively clears the whole set, since the
// escaped object's aliases are no longer tracked individually. The join at
// control-flow merges is set intersection; nil means the pc is unreachable.
func freshSets(prog *dex.Program, m *dex.Method) [][]bool {
	n := len(m.Code)
	in := make([][]bool, n)
	in[0] = make([]bool, m.NumRegs) // entry: nothing fresh (params never are)
	work := []int{0}
	out := make([]bool, m.NumRegs)
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		ins := m.Code[pc]
		copy(out, in[pc])
		clearAll := func(r int) {
			if out[r] {
				for i := range out {
					out[i] = false
				}
			}
		}
		switch ins.Op {
		case dex.OpNewInstance, dex.OpNewArrayInt, dex.OpNewArrayFloat, dex.OpNewArrayRef:
			out[ins.A] = true
		case dex.OpMove:
			out[ins.A] = out[ins.B]
		case dex.OpReturn, dex.OpThrow:
			clearAll(ins.A)
		case dex.OpAStoreRef, dex.OpFStoreRef, dex.OpSStoreRef:
			clearAll(ins.A) // the stored value escapes into the heap
		case dex.OpInvokeStatic, dex.OpInvokeVirtual, dex.OpInvokeNative:
			for _, r := range ins.Args {
				clearAll(r)
			}
			// A is meaningful only for value-returning calls; killing it
			// unconditionally would clobber an unrelated register on void
			// calls (A defaults to 0 there).
			ret := dex.KindVoid
			if ins.Op == dex.OpInvokeNative {
				ret = prog.Natives[ins.Sym].Ret
			} else {
				ret = prog.Methods[ins.Sym].Ret
			}
			if ret != dex.KindVoid {
				out[ins.A] = false
			}
		case dex.OpConstInt, dex.OpConstFloat,
			dex.OpAddInt, dex.OpSubInt, dex.OpMulInt, dex.OpDivInt, dex.OpRemInt,
			dex.OpAndInt, dex.OpOrInt, dex.OpXorInt, dex.OpShlInt, dex.OpShrInt,
			dex.OpNegInt, dex.OpAddFloat, dex.OpSubFloat, dex.OpMulFloat,
			dex.OpDivFloat, dex.OpNegFloat, dex.OpIntToFloat, dex.OpFloatToInt,
			dex.OpCmpFloat, dex.OpArrayLen,
			dex.OpALoadInt, dex.OpALoadFloat, dex.OpALoadRef,
			dex.OpFLoadInt, dex.OpFLoadFloat, dex.OpFLoadRef,
			dex.OpSLoadInt, dex.OpSLoadFloat, dex.OpSLoadRef:
			out[ins.A] = false
		}
		// Propagate out to the successors, intersecting at merges.
		prop := func(succ int) {
			if in[succ] == nil {
				in[succ] = append([]bool(nil), out...)
				work = append(work, succ)
				return
			}
			changed := false
			for i := range in[succ] {
				if in[succ][i] && !out[i] {
					in[succ][i] = false
					changed = true
				}
			}
			if changed {
				work = append(work, succ)
			}
		}
		switch {
		case ins.Op == dex.OpGoto:
			prop(int(ins.Imm))
		case ins.Op.IsBranch():
			prop(pc + 1)
			prop(int(ins.Imm))
		case ins.Op == dex.OpReturn, ins.Op == dex.OpReturnVoid, ins.Op == dex.OpThrow:
		default:
			prop(pc + 1)
		}
	}
	return in
}
