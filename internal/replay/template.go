// Warm replay workers: the §3.3 restore is a fixed cost per run, but its
// output — the post-break-free address space — depends only on the snapshot
// and the ASLR seed. A Template captures that space once, sealed; Workers
// clone it in O(regions) and reset dirty pages in O(pages written) between
// runs, amortizing the restore across an entire search.
package replay

import (
	"sync"
	"time"

	"replayopt/internal/capture"
	"replayopt/internal/mem"
	"replayopt/internal/obs"
)

// Template is one fully restored, sealed address space for a (snapshot,
// ASLR-seed) pair. It is immutable after construction and safe to clone from
// any number of goroutines concurrently.
type Template struct {
	Seed       int64
	Collisions int
	snap       *capture.Snapshot
	space      *mem.AddressSpace // sealed
	obs        *obs.Scope
}

// NewTemplate runs the cold restore once and seals the result. The cost is
// recorded under the same replay.restore_ms histogram as cold runs, so the
// clone-vs-restore comparison reads directly off obs.
func NewTemplate(store *capture.Store, snap *capture.Snapshot, aslrSeed int64) (*Template, error) {
	space, collisions, err := restore(store, snap, aslrSeed)
	if err != nil {
		return nil, err
	}
	space.Seal()
	return &Template{
		Seed:       aslrSeed,
		Collisions: collisions,
		snap:       snap,
		space:      space,
		obs:        store.Obs,
	}, nil
}

// NewWorker clones the template into a private address space. Clones share
// every page frame with the template until first write.
func (t *Template) NewWorker() *Worker {
	var t0 time.Time
	if t.obs != nil {
		//detlint:allow time-now — observability-only clone timing, not replayed state
		t0 = time.Now()
	}
	w := &Worker{tmpl: t, space: t.space.Clone()}
	if t.obs != nil {
		t.obs.Histogram("replay.clone_ms").Observe(float64(time.Since(t0).Microseconds()) / 1000.0)
		t.obs.Counter("replay.warm_workers").Add(1)
	}
	return w
}

// Worker is a reusable warm replay context: one clone of a template's address
// space, reset between runs. A Worker is single-threaded — each worker
// goroutine owns its own — while the underlying template is shared.
type Worker struct {
	tmpl  *Template
	space *mem.AddressSpace
	dirty bool
	runs  int64
}

// Template returns the template this worker clones.
func (w *Worker) Template() *Template { return w.tmpl }

// Runs reports how many replays have reused this worker.
func (w *Worker) Runs() int64 { return w.runs }

// begin hands out the worker's space for one run. The reset is lazy — done
// here rather than at the end of the previous run — because callers (the
// verification map check in particular) read Result.Proc.Space after Run
// returns.
func (w *Worker) begin(sc *obs.Scope) *mem.AddressSpace {
	if w.dirty {
		var t0 time.Time
		if sc != nil {
			//detlint:allow time-now — observability-only reset timing, not replayed state
			t0 = time.Now()
		}
		w.space.Reset()
		if sc != nil {
			sc.Histogram("replay.reset_ms").Observe(float64(time.Since(t0).Microseconds()) / 1000.0)
		}
	}
	w.dirty = true
	w.runs++
	return w.space
}

// TemplateCache builds each (snapshot, ASLR-seed) template at most once and
// shares it across all workers of a search.
type TemplateCache struct {
	mu sync.Mutex
	m  map[templateKey]*Template
}

type templateKey struct {
	snap *capture.Snapshot
	seed int64
}

// NewTemplateCache returns an empty cache.
func NewTemplateCache() *TemplateCache {
	return &TemplateCache{m: make(map[templateKey]*Template)}
}

// Get returns the cached template for (snap, aslrSeed), building it on first
// use. Builds happen under the cache lock: they are rare (a handful per
// search) and serializing them keeps concurrent first users from restoring
// the same snapshot twice.
func (c *TemplateCache) Get(store *capture.Store, snap *capture.Snapshot, aslrSeed int64) (*Template, error) {
	key := templateKey{snap: snap, seed: aslrSeed}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.m[key]; ok {
		if sc := store.Obs; sc != nil {
			sc.Counter("replay.template_hits").Add(1)
		}
		return t, nil
	}
	t, err := NewTemplate(store, snap, aslrSeed)
	if err != nil {
		return nil, err
	}
	c.m[key] = t
	if sc := store.Obs; sc != nil {
		sc.Counter("replay.template_builds").Add(1)
	}
	return t, nil
}
