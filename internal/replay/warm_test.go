package replay

import (
	"math/rand"
	"sync"
	"testing"

	"replayopt/internal/aot"
	"replayopt/internal/mem"
)

func TestWarmWorkerMatchesColdRun(t *testing.T) {
	fx := setupFixture(t)
	android, err := aot.Compile(fx.prog)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := NewTemplate(fx.store, fx.snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := tmpl.NewWorker()
	for _, tier := range []struct {
		name string
		req  Request
	}{
		{"interp", Request{Snapshot: fx.snap, Prog: fx.prog, Tier: TierInterp}},
		{"compiled", Request{Snapshot: fx.snap, Prog: fx.prog, Tier: TierCompiled, Code: android}},
	} {
		cold := tier.req
		cold.ASLRSeed = 1
		resCold, err := Run(fx.dev, fx.store, cold)
		if err != nil {
			t.Fatalf("%s cold: %v", tier.name, err)
		}
		warm := tier.req
		warm.Worker = w
		resWarm, err := Run(fx.dev, fx.store, warm)
		if err != nil {
			t.Fatalf("%s warm: %v", tier.name, err)
		}
		if resWarm.Ret != resCold.Ret || resWarm.Cycles != resCold.Cycles {
			t.Errorf("%s: warm (ret %d, cycles %d) != cold (ret %d, cycles %d)",
				tier.name, int64(resWarm.Ret), resWarm.Cycles, int64(resCold.Ret), resCold.Cycles)
		}
		if resWarm.Collisions != resCold.Collisions {
			t.Errorf("%s: warm collisions %d != cold %d", tier.name, resWarm.Collisions, resCold.Collisions)
		}
	}
}

func TestWarmWorkerRepeatedRunsIdentical(t *testing.T) {
	fx := setupFixture(t)
	tmpl, err := NewTemplate(fx.store, fx.snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := tmpl.NewWorker()
	var ret, cycles uint64
	for i := 0; i < 6; i++ {
		res, err := Run(fx.dev, fx.store, Request{
			Snapshot: fx.snap, Prog: fx.prog, Tier: TierInterp, Worker: w,
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			ret, cycles = res.Ret, res.Cycles
			continue
		}
		if res.Ret != ret || res.Cycles != cycles {
			t.Fatalf("run %d diverged: ret %d cycles %d, want ret %d cycles %d",
				i, int64(res.Ret), res.Cycles, int64(ret), cycles)
		}
	}
	if w.Runs() != 6 {
		t.Errorf("worker ran %d times, want 6", w.Runs())
	}
}

func TestWorkerRejectsForeignSnapshot(t *testing.T) {
	fx := setupFixture(t)
	fx2 := setupFixture(t)
	tmpl, err := NewTemplate(fx.store, fx.snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := tmpl.NewWorker()
	if _, err := Run(fx2.dev, fx2.store, Request{
		Snapshot: fx2.snap, Prog: fx2.prog, Tier: TierInterp, Worker: w,
	}); err == nil {
		t.Fatal("replaying a foreign snapshot on a bound worker did not error")
	}
}

func TestTemplateCacheBuildsOnce(t *testing.T) {
	fx := setupFixture(t)
	cache := NewTemplateCache()
	a, err := cache.Get(fx.store, fx.snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Get(fx.store, fx.snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (snapshot, seed) built two templates")
	}
	c, err := cache.Get(fx.store, fx.snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different seeds share a template")
	}
}

// TestConcurrentTemplateClonesAgree is the -race exercise from the issue:
// many workers cloned from one template replay concurrently and must all
// reproduce the same result without touching each other or the template.
func TestConcurrentTemplateClonesAgree(t *testing.T) {
	fx := setupFixture(t)
	tmpl, err := NewTemplate(fx.store, fx.snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(fx.dev, fx.store, Request{
		Snapshot: fx.snap, Prog: fx.prog, Tier: TierInterp, ASLRSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tmpl.NewWorker()
			for r := 0; r < rounds; r++ {
				res, err := Run(fx.dev, fx.store, Request{
					Snapshot: fx.snap, Prog: fx.prog, Tier: TierInterp, Worker: w,
				})
				if err != nil {
					t.Errorf("worker %d run %d: %v", i, r, err)
					return
				}
				if res.Ret != ref.Ret || res.Cycles != ref.Cycles {
					t.Errorf("worker %d run %d: ret %d cycles %d, want ret %d cycles %d",
						i, r, int64(res.Ret), res.Cycles, int64(ref.Ret), ref.Cycles)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestPickFreePageBounded(t *testing.T) {
	space := mem.NewAddressSpace()
	const arena = 8
	space.Map(0x7e0000000000, arena*mem.PageSize, mem.ProtRW, "full-arena")
	rng := rand.New(rand.NewSource(1))
	if _, err := pickFreePage(space, rng, arena); err == nil {
		t.Fatal("pickFreePage on an exhausted arena did not error")
	}
	space.Unmap(0x7e0000000000)
	if _, err := pickFreePage(space, rng, arena); err != nil {
		t.Fatalf("pickFreePage with free pages errored: %v", err)
	}
}
