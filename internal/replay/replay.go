// Package replay implements offline replay (§3.3, Fig. 5): a loader
// restores the captured pages into a fresh address space — staging pages
// that collide with the loader's own ASLR-randomized mapping, then
// "breaking free" by relocating itself and moving the staged pages home —
// restores the architectural state, and executes the hot region under any
// code version: the baseline compiled binary, the interpreter, or a new
// LLVM-analogue binary.
package replay

import (
	"fmt"
	"math/rand"
	"time"

	"replayopt/internal/capture"
	"replayopt/internal/device"
	"replayopt/internal/dex"
	"replayopt/internal/interp"
	"replayopt/internal/machine"
	"replayopt/internal/mem"
	"replayopt/internal/rt"
)

// Tier selects the code version executed during replay (§3.3 step 4).
type Tier uint8

// Code tiers.
const (
	TierCompiled Tier = iota // a machine-code image (baseline or candidate)
	TierInterp               // the interpreter (verification/profiling runs)
)

// Request describes one replay.
type Request struct {
	Snapshot *capture.Snapshot
	Prog     *dex.Program
	Tier     Tier
	Code     *machine.Program // required for TierCompiled
	// MaxCycles guards against runaway candidate binaries (runtime
	// timeout); 0 applies DefaultMaxCycles.
	MaxCycles uint64
	// Recorder observes the interpreted replay (verification map + type
	// profile construction, §3.4).
	Recorder interp.Recorder
	// ASLRSeed randomizes the loader placement; the same seed reproduces
	// the same layout.
	ASLRSeed int64
	// Worker, when set, replays against the worker's warm template clone
	// instead of restoring the snapshot from scratch: the cold load/break-free
	// path is skipped entirely and ASLRSeed is ignored (the layout is the
	// template's). The worker is reset lazily before its next run, so the
	// caller may still inspect Result.Proc after Run returns.
	Worker *Worker
}

// DefaultMaxCycles is the runtime timeout applied when Request.MaxCycles is
// zero: two billion simulated cycles, several orders of magnitude beyond any
// legitimate hot-region replay, so only genuinely runaway candidates hit it.
const DefaultMaxCycles = 2_000_000_000

// Result is one replay's outcome.
type Result struct {
	Ret    uint64
	Cycles uint64
	Millis float64
	// Proc exposes the post-replay process for verification-map checks.
	Proc *rt.Process
	// Collisions reports how many captured pages the loader had to stage.
	Collisions int
}

// loaderPages is the size of the simulated C loader image.
const loaderPages = 24

// Run performs one replay. The returned error distinguishes runtime crashes
// (traps, faults) and timeouts of the candidate binary; the caller maps them
// to Fig. 1 outcome classes.
func Run(dev *device.Device, store *capture.Store, req Request) (*Result, error) {
	snap := req.Snapshot
	sc := store.Obs

	var space *mem.AddressSpace
	var collisions int
	if w := req.Worker; w != nil {
		if w.tmpl.snap != snap {
			return nil, fmt.Errorf("replay: worker bound to a different snapshot")
		}
		space = w.begin(sc)
		collisions = w.tmpl.Collisions
		if sc != nil {
			sc.Counter("replay.warm_runs").Add(1)
			sc.Gauge("replay.worker_reuse").Set(w.runs)
		}
	} else {
		var err error
		space, collisions, err = restore(store, snap, req.ASLRSeed)
		if err != nil {
			return nil, err
		}
	}

	// 4) Become a partial Android process and execute the chosen version
	// with the restored architectural state.
	proc := rt.Attach(req.Prog, space, rt.Config{})
	res := &Result{Proc: proc, Collisions: collisions}

	maxCycles := req.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	record := func(failed bool) {
		if sc == nil {
			return
		}
		sc.Counter("replay.runs").Add(1)
		sc.Counter("replay.cycles").Add(int64(res.Cycles))
		if failed {
			sc.Counter("replay.failed_runs").Add(1)
		}
	}
	switch req.Tier {
	case TierInterp:
		env := interp.NewEnv(proc)
		env.Natives = interp.BindNatives(req.Prog, interp.NewNativeState(snap.Seed))
		env.MaxCycles = maxCycles
		env.Recorder = req.Recorder
		ret, err := env.Call(snap.Root, snap.Args)
		res.Cycles = env.Cycles
		res.Millis = dev.ReplayMillis(env.Cycles)
		res.Ret = ret
		if err != nil {
			record(true)
			return res, err
		}
	case TierCompiled:
		if req.Code == nil {
			return nil, fmt.Errorf("replay: compiled tier without code image")
		}
		x := machine.NewExec(proc, req.Code)
		x.Fallback.Natives = interp.BindNatives(req.Prog, interp.NewNativeState(snap.Seed))
		x.MaxCycles = maxCycles
		ret, err := x.Call(snap.Root, snap.Args)
		res.Cycles = x.Cycles
		res.Millis = dev.ReplayMillis(x.Cycles)
		res.Ret = ret
		if err != nil {
			record(true)
			return res, err
		}
	default:
		return nil, fmt.Errorf("replay: unknown tier %d", req.Tier)
	}
	record(false)
	return res, nil
}

// restore performs the cold §3.3 load/break-free sequence (steps 1–3),
// building a fresh address space holding the captured state. It is the
// per-run fixed cost the warm worker path amortizes away.
func restore(store *capture.Store, snap *capture.Snapshot, aslrSeed int64) (*mem.AddressSpace, int, error) {
	rng := rand.New(rand.NewSource(aslrSeed))
	sc := store.Obs
	var t0 time.Time
	if sc != nil {
		//detlint:allow time-now — observability-only replay timing, not replayed state
		t0 = time.Now()
	}

	// 1) The loader starts as its own process: its image lands at an
	// ASLR-randomized base that may collide with captured pages.
	space := mem.NewAddressSpace()
	loaderBase := pickLoaderBase(rng, snap)
	space.Map(loaderBase, loaderPages*mem.PageSize, mem.ProtRW, "loader")
	loaderEnd := loaderBase + loaderPages*mem.PageSize

	// 2) Load the captured state zero-copy: each region is mapped onto the
	// snapshot's shared frames (boot-common pages come from the store;
	// file-backed code is re-mapped; untouched pages are fresh zeroed
	// pages). Writers Copy-on-Write, so snapshots stay pristine. Snapshots
	// loaded lazily from a store file materialize here, on first access —
	// and must surface I/O or integrity errors rather than silently mapping
	// fresh zero pages where captured contents belong.
	if err := snap.EnsurePages(); err != nil {
		return nil, 0, fmt.Errorf("replay: %w", err)
	}
	if err := store.EnsureBoot(); err != nil {
		return nil, 0, fmt.Errorf("replay: %w", err)
	}
	frames := snap.Frames()
	boot := store.BootFrames()
	collisions := 0
	frameAt := func(pa mem.Addr, r mem.Region) (*mem.Frame, error) {
		if f, ok := frames[pa]; ok {
			return f, nil
		}
		if r.BootCommon {
			f, ok := boot[pa]
			if !ok {
				return nil, fmt.Errorf("replay: boot-common page %#x missing from store", uint64(pa))
			}
			return f, nil
		}
		return nil, nil
	}
	mapRegion := func(r mem.Region) error {
		if r.Size() == 0 {
			return nil
		}
		fs := make([]*mem.Frame, r.Size()/mem.PageSize)
		for i := range fs {
			f, err := frameAt(r.Start+mem.Addr(i*mem.PageSize), r)
			if err != nil {
				return err
			}
			fs[i] = f
		}
		space.MapFrames(r, fs)
		return nil
	}
	var holes []mem.Region // loader-displaced parts, mapped after break-free
	for _, r := range snap.Layout {
		if loaderEnd <= r.Start || loaderBase >= r.End {
			if err := mapRegion(r); err != nil {
				return nil, 0, err
			}
			continue
		}
		// The region overlaps the loader: map the parts around it now and
		// queue the displaced hole for after the loader releases itself.
		if r.Start < loaderBase {
			sub := r
			sub.End = loaderBase
			if err := mapRegion(sub); err != nil {
				return nil, 0, err
			}
		}
		if r.End > loaderEnd {
			sub := r
			sub.Start = loaderEnd
			if err := mapRegion(sub); err != nil {
				return nil, 0, err
			}
		}
		hole := r
		if hole.Start < loaderBase {
			hole.Start = loaderBase
		}
		if hole.End > loaderEnd {
			hole.End = loaderEnd
		}
		holes = append(holes, hole)
		for pa := hole.Start; pa < hole.End; pa += mem.PageSize {
			if _, captured := frames[pa]; captured {
				collisions++
			}
		}
	}

	// 3) break-free: duplicate the relocation stub to a non-colliding page,
	// release the loader image, and move the displaced pages home.
	stub, err := pickFreePage(space, rng, stubArenaPages)
	if err != nil {
		return nil, 0, err
	}
	space.Map(stub, mem.PageSize, mem.ProtRX, "break-free")
	space.Unmap(loaderBase)
	for _, h := range holes {
		if err := mapRegion(h); err != nil {
			return nil, 0, err
		}
	}
	space.Unmap(stub)
	if sc != nil {
		// Restore = load + break-free, the §3.3 fixed cost of every replay.
		sc.Histogram("replay.restore_ms").Observe(float64(time.Since(t0).Microseconds()) / 1000.0)
		sc.Counter("replay.collisions").Add(int64(collisions))
	}

	return space, collisions, nil
}

// pickLoaderBase picks an ASLR base. With probability ~1/3 it lands inside
// the captured statics/heap range to exercise collision handling, otherwise
// in a free area.
func pickLoaderBase(rng *rand.Rand, snap *capture.Snapshot) mem.Addr {
	if rng.Intn(3) == 0 && len(snap.Layout) > 0 {
		r := snap.Layout[rng.Intn(len(snap.Layout))]
		span := int64(r.Size()) / mem.PageSize
		if span > 0 {
			return r.Start + mem.Addr(rng.Int63n(span))*mem.PageSize
		}
	}
	// A high, isolated area.
	return mem.Addr(0x7f0000000000 + uint64(rng.Intn(1<<16))*mem.PageSize)
}

// stubArenaPages sizes the high arena probed for break-free stub pages.
const stubArenaPages = 1 << 20

// pickFreePageAttempts bounds the random probing below: the stub arena would
// have to be essentially full for this many misses, so hitting the budget
// means the arena is exhausted (or the space is pathological) and the replay
// should fail rather than hang its worker.
const pickFreePageAttempts = 1 << 16

// pickFreePage finds a page-aligned address in the arena's first arenaPages
// pages that is not currently mapped, or errors once the attempt budget is
// spent. Callers pass stubArenaPages; tests shrink the arena to force
// exhaustion cheaply.
func pickFreePage(space *mem.AddressSpace, rng *rand.Rand, arenaPages int) (mem.Addr, error) {
	for i := 0; i < pickFreePageAttempts; i++ {
		a := mem.Addr(0x7e0000000000 + uint64(rng.Intn(arenaPages))*mem.PageSize)
		if !space.Mapped(a) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("replay: stub arena exhausted after %d probes", pickFreePageAttempts)
}
