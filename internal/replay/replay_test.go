package replay

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"replayopt/internal/aot"
	"replayopt/internal/capture"
	"replayopt/internal/device"
	"replayopt/internal/dex"
	"replayopt/internal/interp"
	"replayopt/internal/lir"
	"replayopt/internal/minic"
	"replayopt/internal/rt"
)

// The test app: setup builds state in the heap; the hot region consumes it
// and writes results back (externally visible behavior for verification).
const appSrc = `
global float[] data;
global int[] out;
global int cursor;

func setup(int n) {
	data = new float[n];
	out = new int[8];
	for (int i = 0; i < n; i = i + 1) { data[i] = itof(i % 91) * 0.25; }
}

func hot(int rounds) int {
	float acc = 0.0;
	for (int r = 0; r < rounds; r = r + 1) {
		for (int i = 0; i < len(data); i = i + 1) {
			acc = acc + data[i] * data[i];
		}
	}
	int v = ftoi(acc);
	out[cursor % 8] = v;
	cursor = cursor + 1;
	return v;
}

func scribble() {
	for (int i = 0; i < len(data); i = i + 1) { data[i] = 0.0 - 1.0; }
}

func main() int { setup(600); return hot(2); }
`

type fixture struct {
	prog  *dex.Program
	proc  *rt.Process
	env   *interp.Env
	dev   *device.Device
	store *capture.Store
	snap  *capture.Snapshot
	hotID dex.MethodID
}

func setupFixture(t *testing.T) *fixture {
	t.Helper()
	prog, err := minic.CompileSource("app", appSrc)
	if err != nil {
		t.Fatal(err)
	}
	proc := rt.NewProcess(prog, rt.Config{})
	env := interp.NewEnv(proc)
	env.MaxCycles = 2_000_000_000
	setupID, _ := prog.MethodByName("setup")
	hotID, _ := prog.MethodByName("hot")
	if _, err := env.Call(setupID, []uint64{600}); err != nil {
		t.Fatalf("setup: %v", err)
	}
	dev := device.New(11)
	store := capture.NewStore()
	args := []uint64{3} // rounds
	snap, err := capture.Capture(proc, dev, store, hotID, args, 0, func() error {
		_, err := env.Call(hotID, args)
		return err
	})
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	return &fixture{prog: prog, proc: proc, env: env, dev: dev, store: store, snap: snap, hotID: hotID}
}

func TestCaptureRecordsOnlyTouchedPages(t *testing.T) {
	fx := setupFixture(t)
	st := fx.snap.Stats
	if st.PagesStored == 0 {
		t.Fatal("no program pages captured")
	}
	// The captured page set must be far smaller than the whole space.
	if st.PagesStored >= fx.proc.Space.PageCount()/2 {
		t.Errorf("captured %d of %d pages — not selective", st.PagesStored, fx.proc.Space.PageCount())
	}
	if st.ReadFaults == 0 {
		t.Error("no read faults recorded")
	}
	if st.CommonPages == 0 {
		t.Error("boot-common pages not referenced")
	}
	if st.TotalMs() <= 0 {
		t.Error("no overhead accounted")
	}
	if len(fx.snap.FileMaps) == 0 {
		t.Error("file-backed code mapping not logged")
	}
}

func TestCapturePostponedWhenGCImminent(t *testing.T) {
	fx := setupFixture(t)
	// Allocate until a GC is imminent, then try to capture.
	for !fx.proc.GCImminent() {
		if _, err := fx.proc.NewArray(dex.KindInt, 8192); err != nil {
			t.Fatal(err)
		}
	}
	_, err := capture.Capture(fx.proc, fx.dev, fx.store, fx.hotID, []uint64{1}, 0,
		func() error { return nil })
	if err != capture.ErrGCPostponed {
		t.Errorf("err = %v, want ErrGCPostponed", err)
	}
}

func TestReplayInterpReproducesCapturedExecution(t *testing.T) {
	fx := setupFixture(t)
	// Mutate the live state after the capture: the replay must see the
	// captured state, not the current one.
	scribbleID, _ := fx.prog.MethodByName("scribble")
	if _, err := fx.env.Call(scribbleID, nil); err != nil {
		t.Fatal(err)
	}
	res, err := Run(fx.dev, fx.store, Request{
		Snapshot: fx.snap, Prog: fx.prog, Tier: TierInterp, ASLRSeed: 42,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	// The captured run was hot(3) on the post-setup state: recompute the
	// expected value with a pristine process.
	want := freshRun(t, fx.prog, fx.hotID, 3)
	if res.Ret != want {
		t.Errorf("replayed ret %d, want %d", int64(res.Ret), int64(want))
	}
}

// freshRun executes setup+hot(rounds) in a new process.
func freshRun(t *testing.T, prog *dex.Program, hotID dex.MethodID, rounds uint64) uint64 {
	t.Helper()
	proc := rt.NewProcess(prog, rt.Config{})
	env := interp.NewEnv(proc)
	env.MaxCycles = 2_000_000_000
	setupID, _ := prog.MethodByName("setup")
	if _, err := env.Call(setupID, []uint64{600}); err != nil {
		t.Fatal(err)
	}
	v, err := env.Call(hotID, []uint64{rounds})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestReplayCompiledTiersAgree(t *testing.T) {
	fx := setupFixture(t)
	android, err := aot.Compile(fx.prog)
	if err != nil {
		t.Fatal(err)
	}
	llvm, err := lir.Compile(fx.prog, nil, lir.O2(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resI, err := Run(fx.dev, fx.store, Request{Snapshot: fx.snap, Prog: fx.prog, Tier: TierInterp, ASLRSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := Run(fx.dev, fx.store, Request{Snapshot: fx.snap, Prog: fx.prog, Tier: TierCompiled, Code: android, ASLRSeed: 6})
	if err != nil {
		t.Fatal(err)
	}
	resL, err := Run(fx.dev, fx.store, Request{Snapshot: fx.snap, Prog: fx.prog, Tier: TierCompiled, Code: llvm, ASLRSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Ret != resI.Ret || resL.Ret != resI.Ret {
		t.Fatalf("tiers disagree: interp %d, android %d, llvm %d",
			int64(resI.Ret), int64(resA.Ret), int64(resL.Ret))
	}
	if !(resA.Cycles < resI.Cycles) {
		t.Errorf("compiled replay not faster than interpreted: %d vs %d", resA.Cycles, resI.Cycles)
	}
}

func TestReplayDeterministicCycles(t *testing.T) {
	fx := setupFixture(t)
	android, err := aot.Compile(fx.prog)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) uint64 {
		res, err := Run(fx.dev, fx.store, Request{Snapshot: fx.snap, Prog: fx.prog,
			Tier: TierCompiled, Code: android, ASLRSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	// Same input state => same cycle count, regardless of ASLR placement.
	if a, b := run(1), run(999); a != b {
		t.Errorf("replay cycles vary with ASLR: %d vs %d", a, b)
	}
}

func TestReplayHandlesLoaderCollisions(t *testing.T) {
	fx := setupFixture(t)
	sawCollision := false
	for seed := int64(0); seed < 40; seed++ {
		res, err := Run(fx.dev, fx.store, Request{Snapshot: fx.snap, Prog: fx.prog,
			Tier: TierInterp, ASLRSeed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := freshRun(t, fx.prog, fx.hotID, 3)
		if res.Ret != want {
			t.Fatalf("seed %d: collision corrupted replay: %d != %d", seed, int64(res.Ret), int64(want))
		}
		if res.Collisions > 0 {
			sawCollision = true
		}
	}
	if !sawCollision {
		t.Error("no ASLR seed produced a collision; the break-free path is untested")
	}
}

// A store saved to disk and reloaded must replay identically — the offline
// sessions in §3.7 work from stored captures.
func TestReplayFromPersistedStore(t *testing.T) {
	fx := setupFixture(t)
	path := t.TempDir() + "/store.cas"
	if err := fx.store.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := capture.Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Snapshots) != 1 {
		t.Fatalf("%d snapshots in loaded store", len(loaded.Snapshots))
	}
	if !loaded.Snapshots[0].Lazy() {
		t.Error("loaded snapshot already materialized; lazy load broken")
	}
	orig, err := Run(fx.dev, fx.store, Request{Snapshot: fx.snap, Prog: fx.prog, Tier: TierInterp, ASLRSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	rest, err := Run(fx.dev, loaded, Request{Snapshot: loaded.Snapshots[0], Prog: fx.prog, Tier: TierInterp, ASLRSeed: 78})
	if err != nil {
		t.Fatal(err)
	}
	if orig.Ret != rest.Ret || orig.Cycles != rest.Cycles {
		t.Errorf("persisted replay diverged: ret %d/%d cycles %d/%d",
			int64(orig.Ret), int64(rest.Ret), orig.Cycles, rest.Cycles)
	}
}

// A replay from a store whose backing file was damaged after the load scan
// must fail loudly, not silently map zero pages where captured contents
// belong (a zero page replays as "uncaptured", which would corrupt the
// candidate evaluation rather than abort it).
func TestReplayFromDamagedStoreFailsLoudly(t *testing.T) {
	fx := setupFixture(t)
	path := t.TempDir() + "/store.cas"
	if err := fx.store.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := capture.Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the file between load and first replay: the lazy materialize
	// re-verifies checksums and must refuse.
	if err := os.Truncate(path, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(fx.dev, loaded, Request{Snapshot: loaded.Snapshots[0],
		Prog: fx.prog, Tier: TierInterp, ASLRSeed: 5}); err == nil {
		t.Fatal("replay from a damaged store succeeded silently")
	}
}

func BenchmarkReplayCompiled(b *testing.B) {
	prog, err := minic.CompileSource("app", appSrc)
	if err != nil {
		b.Fatal(err)
	}
	proc := rt.NewProcess(prog, rt.Config{})
	env := interp.NewEnv(proc)
	env.MaxCycles = 2_000_000_000
	setupID, _ := prog.MethodByName("setup")
	hotID, _ := prog.MethodByName("hot")
	if _, err := env.Call(setupID, []uint64{600}); err != nil {
		b.Fatal(err)
	}
	dev := device.New(11)
	store := capture.NewStore()
	snap, err := capture.Capture(proc, dev, store, hotID, []uint64{3}, 0, func() error {
		_, err := env.Call(hotID, []uint64{3})
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	code, err := aot.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(dev, store, Request{Snapshot: snap, Prog: prog,
			Tier: TierCompiled, Code: code, ASLRSeed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel candidate evaluation replays the same snapshot from many
// goroutines at once; every replay must stay hermetic — same return value
// and same deterministic cycle count as a serial run. Run under -race this
// also audits the shared snapshot/store/device state for data races.
func TestConcurrentReplaysAreIndependent(t *testing.T) {
	fx := setupFixture(t)
	android, err := aot.Compile(fx.prog)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(fx.dev, fx.store, Request{Snapshot: fx.snap, Prog: fx.prog,
		Tier: TierCompiled, Code: android, ASLRSeed: 1})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 5
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := int64(w*perWorker + i)
				res, err := Run(fx.dev, fx.store, Request{Snapshot: fx.snap, Prog: fx.prog,
					Tier: TierCompiled, Code: android, ASLRSeed: seed})
				if err != nil {
					errs[w] = fmt.Errorf("seed %d: %w", seed, err)
					return
				}
				if res.Ret != ref.Ret || res.Cycles != ref.Cycles {
					errs[w] = fmt.Errorf("seed %d: ret/cycles %d/%d, want %d/%d",
						seed, int64(res.Ret), res.Cycles, int64(ref.Ret), ref.Cycles)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
