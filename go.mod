module replayopt

go 1.22
