package replayopt

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the DESIGN.md §6 ablations. Each benchmark runs the
// corresponding experiment and prints the regenerated table, so
//
//	go test -bench=. -benchtime=1x .
//
// reproduces the whole evaluation. Benchmarks default to the quick scale
// (same pipeline, smaller GA population and sample counts; shapes hold);
// set REPLAYOPT_FULL=1 for the paper's exact §4 budgets, or run
// cmd/experiments -scale full.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"replayopt/internal/aot"
	"replayopt/internal/apps"
	"replayopt/internal/capture"
	"replayopt/internal/capture/castore"
	"replayopt/internal/core"
	"replayopt/internal/device"
	"replayopt/internal/dex"
	"replayopt/internal/exp"
	"replayopt/internal/ga"
	"replayopt/internal/interp"
	"replayopt/internal/lir"
	"replayopt/internal/lir/tv"
	"replayopt/internal/machine"
	"replayopt/internal/minic"
	"replayopt/internal/obs"
	"replayopt/internal/profile"
	"replayopt/internal/rt"
	"replayopt/internal/sa/pts"
	"replayopt/internal/sa/vra"
	"replayopt/internal/verify"
)

func benchScale(b *testing.B) exp.Scale {
	b.Helper()
	if os.Getenv("REPLAYOPT_FULL") == "1" {
		return exp.Full()
	}
	return exp.Quick()
}

const benchSeed = 1

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Table1()
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, t, err := exp.Figure1(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
		b.ReportMetric(res.CorrectFraction()*100, "%correct")
		b.ReportMetric(res.RuntimeFailFraction()*100, "%runtime-fail")
	}
}

func BenchmarkFigure2(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, t, err := exp.Figure2(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
		slower := 0
		for _, s := range res.Speedups {
			if s < 1 {
				slower++
			}
		}
		b.ReportMetric(float64(slower)/float64(len(res.Speedups))*100, "%slower-than-Android")
	}
}

func BenchmarkFigure3(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, t, err := exp.Figure3(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
		b.ReportMetric(float64(res.OnlineStableEvals), "online-evals-to-10%")
		b.ReportMetric(float64(res.OfflineDecideEvals), "offline-evals-to-decide")
	}
}

// figure7 runs the full pipeline over all 21 apps and caches the result for
// Figure 9's derivation within the same benchmark run.
func BenchmarkFigure7(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, t, err := exp.Figure7(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
		b.ReportMetric(res.AvgGA, "avg-GA-speedup")
		b.ReportMetric(res.AvgO3, "avg-O3-speedup")
	}
}

func BenchmarkFigure9(b *testing.B) {
	scale := benchScale(b)
	// Figure 9 is derived from Figure 7's search traces; a smaller app
	// subset keeps the standalone benchmark affordable.
	scale.Apps = []string{"FFT", "BubbleSort", "MaterialLife", "DroidFish"}
	for i := 0; i < b.N; i++ {
		res, _, err := exp.Figure7(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		_, t9 := exp.Figure9(res)
		if i == 0 {
			fmt.Println(t9.String())
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Figure8(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		rows, t, err := exp.Figure10(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
		var sum float64
		for _, r := range rows {
			sum += r.Stats.TotalMs()
		}
		b.ReportMetric(sum/float64(len(rows)), "avg-capture-ms")
	}
}

func BenchmarkFigure11(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		rows, t, err := exp.Figure11(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
		var sum float64
		for _, r := range rows {
			sum += r.ProgramMB
		}
		b.ReportMetric(sum/float64(len(rows)), "avg-program-MB")
	}
}

func BenchmarkAblationCoW(b *testing.B) {
	scale := benchScale(b)
	scale.Apps = []string{"FFT", "BubbleSort", "MaterialLife"}
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationCoW(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkAblationFullSnapshot(b *testing.B) {
	scale := benchScale(b)
	scale.Apps = []string{"FFT", "Poker Odds (Vitosha)", "4inaRow"}
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationFullSnapshot(scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkAblationRandomSearch(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationRandomSearch(scale, benchSeed, "FFT")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkAblationNoVerify(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationNoVerify(scale, benchSeed, "FFT")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkAblationGCCheckElim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationGCCheckElim(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkAblationDevirt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationDevirt(benchSeed, "DroidFish")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkAblationCrossValidate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationCrossValidate(benchScale(b), benchSeed, "MaterialLife")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkAblationTTestFitness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationTTestFitness(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

func BenchmarkScheduleTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.ScheduleTable(nil, benchScale(b), benchSeed, "FFT")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

// BenchmarkEffectAnalysis measures what the interprocedural effect analysis
// (internal/sa) buys over the §3.1 boolean blocklist: deep-replayable method
// coverage, guards the backend no longer emits (GC checks eliminated, virtual
// calls devirtualized), and the §3.4 verification-map size for a region the
// analysis proves free of heap writes. Results land in BENCH_sa.json.
func BenchmarkEffectAnalysis(b *testing.B) {
	appNames := []string{"FFT", "BubbleSort", "MaterialLife", "DroidFish"}

	type appRow struct {
		App           string `json:"app"`
		Methods       int    `json:"methods"`
		DeepBlocklist int    `json:"deep_replayable_blocklist"`
		DeepEffects   int    `json:"deep_replayable_effects"`
		GCChkBaseline int    `json:"gcchk_baseline"`
		GCChkEffects  int    `json:"gcchk_effects"`
		CallVBaseline int    `json:"callv_baseline"`
		CallVEffects  int    `json:"callv_effects"`
	}
	type vmapRow struct {
		App                 string `json:"app"`
		Region              string `json:"region_root"`
		RegionEffect        string `json:"region_effect"`
		EntriesConservative int    `json:"entries_conservative"`
		EntriesEffects      int    `json:"entries_effects"`
		StoresSkipped       bool   `json:"stores_skipped"`
	}

	countOps := func(code *machine.Program) (gcchk, callv int) {
		for _, fn := range code.Fns {
			for _, in := range fn.Code {
				switch in.Op {
				case machine.GCChk:
					gcchk++
				case machine.CallV:
					callv++
				}
			}
		}
		return
	}

	specFor := func(name string) (apps.Spec, bool) {
		if name == "WitnessFilter" {
			return apps.WitnessSpec(), true
		}
		return apps.ByName(name)
	}

	var rows []appRow
	var vmaps []vmapRow
	for i := 0; i < b.N; i++ {
		rows, vmaps = nil, nil
		for _, name := range append(appNames, "WitnessFilter") {
			spec, ok := specFor(name)
			if !ok {
				b.Fatalf("unknown app %s", name)
			}
			app, err := apps.Build(spec)
			if err != nil {
				b.Fatal(err)
			}
			eff := profile.Analyze(app.Prog)
			block := profile.AnalyzeBlocklist(app.Prog)
			row := appRow{App: name, Methods: len(app.Prog.Methods)}
			var compilable []dex.MethodID
			for id := range app.Prog.Methods {
				if block.ReplayableDeep[id] {
					row.DeepBlocklist++
				}
				if eff.ReplayableDeep[id] {
					row.DeepEffects++
				}
				if eff.Compilable[id] {
					compilable = append(compilable, dex.MethodID(id))
				}
			}
			// O2 plus the two guard-bearing custom passes the GA searches
			// over: with a nil static result both degrade to conservative
			// behavior, so the delta is exactly what the analysis eliminates.
			cfg := lir.O2()
			cfg.Passes = append(cfg.Passes,
				lir.PassSpec{Name: "gccheckelim"},
				lir.PassSpec{Name: "devirt"})
			base, err := lir.Compile(app.Prog, compilable, cfg, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			opt, err := lir.Compile(app.Prog, compilable, cfg, nil, eff.Effects)
			if err != nil {
				b.Fatal(err)
			}
			row.GCChkBaseline, row.CallVBaseline = countOps(base)
			row.GCChkEffects, row.CallVEffects = countOps(opt)
			rows = append(rows, row)
		}

		// Verification-map size for a region the analysis proves write-free
		// (the witness app's pure kernel) and a representative escaping-write
		// region (FFT), each built conservatively and effect-aware.
		for _, name := range []string{"WitnessFilter", "FFT"} {
			spec, _ := specFor(name)
			app, err := apps.Build(spec)
			if err != nil {
				b.Fatal(err)
			}
			opt := core.New(core.DefaultOptions())
			p, err := opt.Prepare(app)
			if err != nil {
				b.Fatal(err)
			}
			cons, _, err := verify.Build(opt.Dev, opt.Store, p.Snapshot, app.Prog, nil)
			if err != nil {
				b.Fatal(err)
			}
			effm, _, err := verify.Build(opt.Dev, opt.Store, p.Snapshot, app.Prog, p.Analysis.Effects)
			if err != nil {
				b.Fatal(err)
			}
			vmaps = append(vmaps, vmapRow{
				App:                 name,
				Region:              app.Prog.Methods[p.Region.Root].Name,
				RegionEffect:        p.Analysis.Effects.Summary[p.Region.Root].String(),
				EntriesConservative: len(cons.Entries),
				EntriesEffects:      len(effm.Entries),
				StoresSkipped:       effm.StoresSkipped,
			})
		}
	}

	var deepBlock, deepEff, gcElim, callvElim int
	for _, r := range rows {
		deepBlock += r.DeepBlocklist
		deepEff += r.DeepEffects
		gcElim += r.GCChkBaseline - r.GCChkEffects
		callvElim += r.CallVBaseline - r.CallVEffects
	}
	b.ReportMetric(float64(deepEff-deepBlock), "deep-replayable-gain")
	b.ReportMetric(float64(gcElim), "gcchk-eliminated")
	b.ReportMetric(float64(callvElim), "callv-devirtualized")

	artifact, err := json.MarshalIndent(map[string]any{
		"schema_version":            2,
		"benchmark":                 "EffectAnalysis",
		"apps":                      rows,
		"vmap":                      vmaps,
		"deep_replayable_blocklist": deepBlock,
		"deep_replayable_effects":   deepEff,
		"gcchk_eliminated":          gcElim,
		"callv_devirtualized":       callvElim,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sa.json", append(artifact, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("effect analysis: deep-replayable %d -> %d; %d GC checks eliminated, %d virtual calls devirtualized\n",
		deepBlock, deepEff, gcElim, callvElim)
}

// BenchmarkRangeAnalysis measures the interprocedural value-range analysis
// (internal/sa/vra) and its three consumer passes: per app, the machine-level
// bounds checks rangecheckelim discharges from the hot region (gated at >= 50%
// on the kernel subjects where index flow is range-provable), the unguarded
// divides rangestrength/rangecheckelim select, the whole-program exec-cycle
// delta, and the analysis wall-clock. It also proves the two safety
// properties the passes claim: a validated compile produces zero tv
// rejections, and a GA search with the range passes excluded from the pool
// yields a byte-identical decision trace whether summaries are attached or
// not. Results land in BENCH_range.json (schema checked by cmd/benchlint).
func BenchmarkRangeAnalysis(b *testing.B) {
	// Kernel subjects: hot regions whose index expressions the analysis can
	// relate to array lengths (direct len() loop bounds). The others are
	// reported but not gated — their loop bounds arrive through parameters
	// the range lattice cannot tie to a specific array.
	kernelApps := map[string]bool{"SOR": true, "SelectionSort": true}
	appNames := []string{"SOR", "SelectionSort", "FFT", "LU", "BubbleSort", "MaterialLife"}
	const minKernelDischargePct = 50.0

	type appRow struct {
		App           string  `json:"app"`
		Kernel        bool    `json:"kernel"`
		BoundsBase    int     `json:"bounds_base"`
		BoundsOpt     int     `json:"bounds_opt"`
		DischargePct  float64 `json:"discharge_pct"`
		UnguardedDivs int     `json:"unguarded_divs"`
		CyclesBase    uint64  `json:"cycles_base"`
		CyclesOpt     uint64  `json:"cycles_opt"`
		CycleDeltaPct float64 `json:"cycle_delta_pct"`
		AnalysisMs    float64 `json:"analysis_ms"`
	}

	countOps := func(code *machine.Program) (bound, divu int) {
		for _, fn := range code.Fns {
			for _, in := range fn.Code {
				switch in.Op {
				case machine.Bound:
					bound++
				case machine.DivU, machine.RemU:
					divu++
				}
			}
		}
		return
	}
	runProgram := func(app *core.App, code *machine.Program) (uint64, error) {
		_, x := app.NewProcessAndExec(code)
		x.MaxCycles = 50_000_000_000
		if _, err := x.Call(app.Prog.Entry, nil); err != nil {
			return 0, err
		}
		return x.Cycles, nil
	}
	rangeSpecs := []lir.PassSpec{
		{Name: "rangecheckelim"},
		{Name: "rangebranch"},
		{Name: "rangestrength"},
		{Name: "simplifycfg"},
		{Name: "dce"},
	}

	var rows []appRow
	var tvRejected int
	traceParity := false
	for i := 0; i < b.N; i++ {
		rows = nil
		tvRejected = 0
		for _, name := range appNames {
			spec, ok := apps.ByName(name)
			if !ok {
				b.Fatalf("unknown app %s", name)
			}
			app, err := apps.Build(spec)
			if err != nil {
				b.Fatal(err)
			}
			// Locate the hot region exactly as the optimizer's prepare
			// stage does, then attach interprocedural summaries.
			android, err := aot.Compile(app.Prog)
			if err != nil {
				b.Fatal(err)
			}
			prof := profile.NewProfile()
			_, x := app.NewProcessAndExec(android)
			x.SamplePeriod = profile.SamplePeriodCycles
			x.Sampler = prof
			x.MaxCycles = 50_000_000_000
			if _, err := x.Call(app.Prog.Entry, nil); err != nil {
				b.Fatal(err)
			}
			analysis := profile.Analyze(app.Prog)
			region, ok := profile.HotRegion(app.Prog, analysis, prof)
			if !ok {
				b.Fatalf("%s: no replayable hot region", name)
			}
			start := time.Now()
			vra.Attach(analysis.Effects)
			analysisMs := time.Since(start).Seconds() * 1000

			// Hot-region discharge at O1 (no bce in the base pipeline, so
			// the delta is the range passes' own contribution).
			base, _ := lir.Preset("O1")
			opt := base
			opt.Passes = append(append([]lir.PassSpec{}, base.Passes...), rangeSpecs...)
			baseRegion, err := lir.Compile(app.Prog, region.Methods, base, nil, analysis.Effects)
			if err != nil {
				b.Fatal(err)
			}
			chk := tv.NewChecker(tv.Options{Strict: true})
			optChecked := opt
			optChecked.Check = chk
			optChecked.CheckEach = true
			optRegion, err := lir.Compile(app.Prog, region.Methods, optChecked, nil, analysis.Effects)
			if err != nil {
				b.Fatal(err)
			}
			_, _, rejected := chk.Counts()
			tvRejected += rejected

			row := appRow{App: name, Kernel: kernelApps[name], AnalysisMs: analysisMs}
			row.BoundsBase, _ = countOps(baseRegion)
			row.BoundsOpt, row.UnguardedDivs = countOps(optRegion)
			if row.BoundsBase > 0 {
				row.DischargePct = 100 * float64(row.BoundsBase-row.BoundsOpt) / float64(row.BoundsBase)
			}

			// Whole-program exec-cycle delta with the range passes on.
			baseAll, err := lir.Compile(app.Prog, nil, base, nil, analysis.Effects)
			if err != nil {
				b.Fatal(err)
			}
			optAll, err := lir.Compile(app.Prog, nil, opt, nil, analysis.Effects)
			if err != nil {
				b.Fatal(err)
			}
			if row.CyclesBase, err = runProgram(app, baseAll); err != nil {
				b.Fatal(err)
			}
			if row.CyclesOpt, err = runProgram(app, optAll); err != nil {
				b.Fatal(err)
			}
			row.CycleDeltaPct = (float64(row.CyclesOpt)/float64(row.CyclesBase) - 1) * 100

			if row.Kernel && row.DischargePct < minKernelDischargePct {
				b.Fatalf("%s: rangecheckelim discharged %.0f%% of hot-region bounds checks, want >= %.0f%%",
					name, row.DischargePct, minKernelDischargePct)
			}
			rows = append(rows, row)
		}
		if tvRejected > 0 {
			b.Fatalf("%d tv rejections on range-pass pipelines (passes must never be Rejected)", tvRejected)
		}

		// Trace parity: with the range passes excluded from the search pool,
		// attached summaries must be invisible to the GA — byte-identical
		// decision traces with and without them.
		p, _, err := exp.PrepareApp("Fibonacci.recv", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		opts := benchScale(b).GA
		opts.BaselineAndroidMs = p.AndroidEval.MeanMs
		opts.BaselineO3Ms = p.O3Eval.MeanMs
		opts.ExcludePasses = []string{"rangecheckelim", "rangebranch", "rangestrength"}
		withRanges := ga.Search(rand.New(rand.NewSource(benchSeed)), p, opts).DecisionTrace()
		p.Analysis.Effects.Ranges = nil
		withoutRanges := ga.Search(rand.New(rand.NewSource(benchSeed)), p, opts).DecisionTrace()
		traceParity = withRanges == withoutRanges
		if !traceParity {
			b.Fatal("decision trace changed when range summaries were attached but the passes were unselected")
		}
	}

	var discharged, totalBase int
	var analysisMs float64
	for _, r := range rows {
		discharged += r.BoundsBase - r.BoundsOpt
		totalBase += r.BoundsBase
		analysisMs += r.AnalysisMs
	}
	b.ReportMetric(float64(discharged), "bounds-discharged")
	b.ReportMetric(float64(discharged)/float64(totalBase)*100, "%discharged")
	b.ReportMetric(analysisMs/float64(len(rows)), "analysis-ms/app")

	artifact, err := json.MarshalIndent(map[string]any{
		"schema_version":           1,
		"benchmark":                "RangeAnalysis",
		"apps":                     rows,
		"kernel_min_discharge_pct": minKernelDischargePct,
		"bounds_discharged":        discharged,
		"tv_rejected":              tvRejected,
		"trace_parity":             traceParity,
		"trace_app":                "Fibonacci.recv",
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_range.json", append(artifact, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("range analysis: %d/%d hot-region bounds checks discharged; tv rejects %d; trace parity %v\n",
		discharged, totalBase, tvRejected, traceParity)
	for _, r := range rows {
		fmt.Printf("  %-14s kernel=%-5v bound %3d -> %3d (%4.0f%%) divu %d  cycles %+.2f%%  analysis %.1f ms\n",
			r.App, r.Kernel, r.BoundsBase, r.BoundsOpt, r.DischargePct, r.UnguardedDivs, r.CycleDeltaPct, r.AnalysisMs)
	}
}

// BenchmarkAliasAnalysis measures the interprocedural points-to analysis
// (internal/sa/pts) and its four consumer passes: per app, how many of the
// same-kind access pairs the alias-blind passes must assume conflicting the
// analysis proves apart (gated at >= 30% on the kernel subjects whose hot
// loops mix provably distinct locations), the whole-program exec-cycle delta
// with the alias-aware memory pipeline on, and the verification-map shrink
// from eliding stores into provably non-escaping allocations. It also proves
// the two safety properties the passes claim: a validated compile produces
// zero tv rejections, and a GA search with the alias-consuming passes
// excluded from the pool yields a byte-identical decision trace whether
// summaries are attached or not. Results land in BENCH_alias.json (schema
// checked by cmd/benchlint).
func BenchmarkAliasAnalysis(b *testing.B) {
	// Kernel subjects: hot regions over several distinct arrays or fields,
	// where base/slot separation is provable. FFT and SOR are reported but
	// not gated — their kernels index one shared array with loop-carried
	// expressions no flow-insensitive analysis can separate.
	kernelApps := map[string]bool{"Sparse matmult": true, "Linpack": true, "Dhrystone": true}
	appNames := []string{"Sparse matmult", "Linpack", "Dhrystone", "FFT", "SOR", "MaterialLife"}
	const minKernelDisambiguationPct = 30.0

	type appRow struct {
		App               string  `json:"app"`
		Kernel            bool    `json:"kernel"`
		Pairs             int     `json:"pairs"`
		Proven            int     `json:"proven"`
		DisambiguationPct float64 `json:"disambiguation_pct"`
		Sites             int     `json:"sites"`
		NonEscaping       int     `json:"non_escaping"`
		CyclesBase        uint64  `json:"cycles_base"`
		CyclesOpt         uint64  `json:"cycles_opt"`
		CycleDeltaPct     float64 `json:"cycle_delta_pct"`
		AnalysisMs        float64 `json:"analysis_ms"`
	}
	type vmapRow struct {
		App          string `json:"app"`
		Region       string `json:"region"`
		EntriesBlind int    `json:"entries_blind"`
		EntriesAlias int    `json:"entries_alias"`
		StoresElided int    `json:"stores_elided"`
	}

	runProgram := func(app *core.App, code *machine.Program) (uint64, error) {
		_, x := app.NewProcessAndExec(code)
		x.MaxCycles = 50_000_000_000
		if _, err := x.Call(app.Prog.Entry, nil); err != nil {
			return 0, err
		}
		return x.Cycles, nil
	}
	specFor := func(name string) (apps.Spec, bool) {
		if name == "ScratchFilter" {
			return apps.ScratchSpec(), true
		}
		return apps.ByName(name)
	}
	aliasSpecs := []lir.PassSpec{
		{Name: "storeforward"},
		{Name: "dse"},
		{Name: "licm", Params: map[string]int{"loads": 1}},
		{Name: "stackalloc"},
		{Name: "simplifycfg"},
		{Name: "dce"},
	}

	var rows []appRow
	var vmaps []vmapRow
	var tvRejected int
	traceParity := false
	for i := 0; i < b.N; i++ {
		rows, vmaps = nil, nil
		tvRejected = 0
		for _, name := range appNames {
			spec, ok := apps.ByName(name)
			if !ok {
				b.Fatalf("unknown app %s", name)
			}
			app, err := apps.Build(spec)
			if err != nil {
				b.Fatal(err)
			}
			android, err := aot.Compile(app.Prog)
			if err != nil {
				b.Fatal(err)
			}
			prof := profile.NewProfile()
			_, x := app.NewProcessAndExec(android)
			x.SamplePeriod = profile.SamplePeriodCycles
			x.Sampler = prof
			x.MaxCycles = 50_000_000_000
			if _, err := x.Call(app.Prog.Entry, nil); err != nil {
				b.Fatal(err)
			}
			analysis := profile.Analyze(app.Prog)
			region, ok := profile.HotRegion(app.Prog, analysis, prof)
			if !ok {
				b.Fatalf("%s: no replayable hot region", name)
			}
			start := time.Now()
			pts.Attach(analysis.Effects)
			analysisMs := time.Since(start).Seconds() * 1000

			rep := pts.BuildReport(name, analysis.Effects, region.Methods)
			row := appRow{
				App: name, Kernel: kernelApps[name], AnalysisMs: analysisMs,
				Pairs: rep.Totals.Pairs, Proven: rep.Totals.Proven,
				Sites: rep.Totals.Sites, NonEscaping: rep.Totals.NonEscaping,
			}
			if row.Pairs > 0 {
				row.DisambiguationPct = 100 * float64(row.Proven) / float64(row.Pairs)
			}

			// Hot-region compile at O1 + the alias-aware memory pipeline,
			// strict-validated: these passes must never earn a Rejected.
			base, _ := lir.Preset("O1")
			opt := base
			opt.Passes = append(append([]lir.PassSpec{}, base.Passes...), aliasSpecs...)
			chk := tv.NewChecker(tv.Options{Strict: true})
			optChecked := opt
			optChecked.Check = chk
			optChecked.CheckEach = true
			if _, err := lir.Compile(app.Prog, region.Methods, optChecked, nil, analysis.Effects); err != nil {
				b.Fatal(err)
			}
			_, _, rejected := chk.Counts()
			tvRejected += rejected

			// Whole-program exec-cycle delta with the memory passes on.
			baseAll, err := lir.Compile(app.Prog, nil, base, nil, analysis.Effects)
			if err != nil {
				b.Fatal(err)
			}
			optAll, err := lir.Compile(app.Prog, nil, opt, nil, analysis.Effects)
			if err != nil {
				b.Fatal(err)
			}
			if row.CyclesBase, err = runProgram(app, baseAll); err != nil {
				b.Fatal(err)
			}
			if row.CyclesOpt, err = runProgram(app, optAll); err != nil {
				b.Fatal(err)
			}
			row.CycleDeltaPct = (float64(row.CyclesOpt)/float64(row.CyclesBase) - 1) * 100

			if row.Kernel && row.DisambiguationPct < minKernelDisambiguationPct {
				b.Fatalf("%s: alias analysis disambiguated %.0f%% of same-kind pairs, want >= %.0f%%",
					name, row.DisambiguationPct, minKernelDisambiguationPct)
			}
			rows = append(rows, row)
		}
		if tvRejected > 0 {
			b.Fatalf("%d tv rejections on alias-pass pipelines (passes must never be Rejected)", tvRejected)
		}

		// Verification-map shrink: regions whose hot code allocates scratch
		// objects the analysis proves non-escaping, built with summaries
		// nulled (blind) and attached.
		for _, name := range []string{"ScratchFilter", "MaterialLife"} {
			spec, _ := specFor(name)
			app, err := apps.Build(spec)
			if err != nil {
				b.Fatal(err)
			}
			opt := core.New(core.DefaultOptions())
			p, err := opt.Prepare(app)
			if err != nil {
				b.Fatal(err)
			}
			eff := p.Analysis.Effects
			al := eff.Alias
			eff.Alias = nil
			blind, _, err := verify.Build(opt.Dev, opt.Store, p.Snapshot, app.Prog, eff)
			if err != nil {
				b.Fatal(err)
			}
			eff.Alias = al
			aware, _, err := verify.Build(opt.Dev, opt.Store, p.Snapshot, app.Prog, eff)
			if err != nil {
				b.Fatal(err)
			}
			if len(aware.Entries) > len(blind.Entries) {
				b.Fatalf("%s: alias-aware vmap grew (%d -> %d entries)", name, len(blind.Entries), len(aware.Entries))
			}
			vmaps = append(vmaps, vmapRow{
				App:          name,
				Region:       app.Prog.Methods[p.Region.Root].Name,
				EntriesBlind: len(blind.Entries),
				EntriesAlias: len(aware.Entries),
				StoresElided: aware.StoresElided,
			})
		}
		shrunk := 0
		for _, v := range vmaps {
			shrunk += v.EntriesBlind - v.EntriesAlias
		}
		if shrunk <= 0 {
			b.Fatal("alias-aware verification maps show no size win over the blind maps")
		}

		// Trace parity: with the alias-consuming passes excluded from the
		// search pool, attached summaries must be invisible to the GA —
		// byte-identical decision traces with and without them.
		p, _, err := exp.PrepareApp("Fibonacci.recv", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		opts := benchScale(b).GA
		opts.BaselineAndroidMs = p.AndroidEval.MeanMs
		opts.BaselineO3Ms = p.O3Eval.MeanMs
		opts.ExcludePasses = []string{"storeforward", "dse", "licm", "stackalloc"}
		withAlias := ga.Search(rand.New(rand.NewSource(benchSeed)), p, opts).DecisionTrace()
		p.Analysis.Effects.Alias = nil
		withoutAlias := ga.Search(rand.New(rand.NewSource(benchSeed)), p, opts).DecisionTrace()
		traceParity = withAlias == withoutAlias
		if !traceParity {
			b.Fatal("decision trace changed when alias summaries were attached but the passes were unselected")
		}
	}

	var proven, pairs, elided int
	var analysisMs float64
	for _, r := range rows {
		proven += r.Proven
		pairs += r.Pairs
		analysisMs += r.AnalysisMs
	}
	for _, v := range vmaps {
		elided += v.StoresElided
	}
	b.ReportMetric(float64(proven), "pairs-disambiguated")
	b.ReportMetric(float64(proven)/float64(pairs)*100, "%disambiguated")
	b.ReportMetric(float64(elided), "stores-elided")
	b.ReportMetric(analysisMs/float64(len(rows)), "analysis-ms/app")

	artifact, err := json.MarshalIndent(map[string]any{
		"schema_version":                1,
		"benchmark":                     "AliasAnalysis",
		"apps":                          rows,
		"vmap":                          vmaps,
		"kernel_min_disambiguation_pct": minKernelDisambiguationPct,
		"pairs_proven":                  proven,
		"pairs_total":                   pairs,
		"stores_elided":                 elided,
		"tv_rejected":                   tvRejected,
		"trace_parity":                  traceParity,
		"trace_app":                     "Fibonacci.recv",
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_alias.json", append(artifact, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("alias analysis: %d/%d same-kind pairs disambiguated; %d vmap stores elided; tv rejects %d; trace parity %v\n",
		proven, pairs, elided, tvRejected, traceParity)
	for _, r := range rows {
		fmt.Printf("  %-14s kernel=%-5v pairs %3d/%-3d (%4.0f%%) sites %d/%d local  cycles %+.2f%%  analysis %.1f ms\n",
			r.App, r.Kernel, r.Proven, r.Pairs, r.DisambiguationPct, r.NonEscaping, r.Sites, r.CycleDeltaPct, r.AnalysisMs)
	}
	for _, v := range vmaps {
		fmt.Printf("  vmap %-14s region=%s entries %d -> %d (elided %d)\n",
			v.App, v.Region, v.EntriesBlind, v.EntriesAlias, v.StoresElided)
	}
}

// tvBenchSrc is the miniature app the early-discard benchmark searches over
// (a hot kernel with array traffic, a virtual call, and global stores —
// enough surface for tvbreak to corrupt).
const tvBenchSrc = `
global float[] board;
global int ticks;

class Rule { func weight(int i) int { return i % 7; } }
class Fancy extends Rule { func weight(int i) int { return (i * 3) % 11; } }

func setup(int n) {
	board = new float[n];
	for (int i = 0; i < n; i = i + 1) { board[i] = itof(i % 13) * 0.5; }
}

func simulate(int rounds) int {
	Rule r = new Fancy();
	float acc = 0.0;
	for (int k = 0; k < rounds; k = k + 1) {
		for (int i = 0; i < len(board); i = i + 1) {
			acc = acc + board[i] * itof(r.weight(i));
		}
	}
	ticks = ticks + 1;
	return ftoi(acc);
}

func main() int {
	setup(400);
	int total = 0;
	for (int f = 0; f < 5; f = f + 1) {
		total = total + simulate(3);
		draw_frame(f);
	}
	print_int(total);
	return total;
}
`

// BenchmarkTranslationValidation measures the per-pass validator: compile
// overhead with the checker attached, verdict composition at each preset,
// and — with the deliberately miscompiling tvbreak pass dropped into the
// catalog — how many candidates a validated search discards statically and
// how many replay evaluations that saves. Results land in BENCH_tv.json.
func BenchmarkTranslationValidation(b *testing.B) {
	appNames := []string{"FFT", "BubbleSort", "MaterialLife", "DroidFish"}

	type presetRow struct {
		App        string  `json:"app"`
		Preset     string  `json:"preset"`
		PlainMs    float64 `json:"compile_ms"`
		CheckedMs  float64 `json:"compile_checked_ms"`
		PerPassUs  float64 `json:"validate_per_pass_us"`
		Verified   int     `json:"verified"`
		Unverified int     `json:"unverified"`
		Rejected   int     `json:"rejected"`
	}

	var rows []presetRow
	var tvRejects, savedReplays int
	for i := 0; i < b.N; i++ {
		rows = nil
		for _, name := range appNames {
			spec, ok := apps.ByName(name)
			if !ok {
				b.Fatalf("unknown app %s", name)
			}
			app, err := apps.Build(spec)
			if err != nil {
				b.Fatal(err)
			}
			for _, preset := range []string{"O1", "O2", "O3"} {
				cfg, _ := lir.Preset(preset)
				start := time.Now()
				if _, err := lir.Compile(app.Prog, nil, cfg, nil, nil); err != nil {
					b.Fatal(err)
				}
				plainMs := time.Since(start).Seconds() * 1000
				chk := tv.NewChecker(tv.Options{Strict: true})
				cfg.Check = chk
				cfg.CheckEach = true
				start = time.Now()
				if _, err := lir.Compile(app.Prog, nil, cfg, nil, nil); err != nil {
					b.Fatal(err)
				}
				checkedMs := time.Since(start).Seconds() * 1000
				row := presetRow{App: name, Preset: preset, PlainMs: plainMs, CheckedMs: checkedMs}
				row.Verified, row.Unverified, row.Rejected = chk.Counts()
				if n := len(chk.Verdicts); n > 0 {
					row.PerPassUs = (checkedMs - plainMs) * 1000 / float64(n)
				}
				if row.Rejected > 0 {
					b.Fatalf("%s %s: %d passes rejected on the stock pipeline", name, preset, row.Rejected)
				}
				rows = append(rows, row)
			}
		}

		// The early-discard claim, end to end: with tvbreak in the catalog a
		// validated search must stop the miscompiled candidates at compile
		// time, saving their replay evaluations.
		cleanup := lir.RegisterForTesting(tv.MiscompilePass())
		prog, err := minic.CompileSource("miniapp", tvBenchSrc)
		if err != nil {
			cleanup()
			b.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.GA.Population = 8
		opts.GA.Generations = 3
		opts.GA.HillClimbBudget = 6
		opts.OnlineRuns = 3
		opts.Seed = 10
		opts.TVCheck = true
		rep, err := core.New(opts).Optimize(&core.App{Name: "miniapp", Prog: prog})
		cleanup()
		if err != nil {
			b.Fatal(err)
		}
		tvRejects = rep.SearchStats.TVRejects
		savedReplays = rep.SearchStats.TVSavedReplayEvals
		if savedReplays < 1 {
			b.Fatal("validated search saved no replay evaluations")
		}
	}

	var plain, checked float64
	var verified, unverified int
	for _, r := range rows {
		plain += r.PlainMs
		checked += r.CheckedMs
		verified += r.Verified
		unverified += r.Unverified
	}
	b.ReportMetric((checked-plain)/plain*100, "%compile-overhead")
	b.ReportMetric(float64(tvRejects), "tv-rejects")
	b.ReportMetric(float64(savedReplays), "replay-evals-saved")

	artifact, err := json.MarshalIndent(map[string]any{
		"schema_version":     1,
		"benchmark":          "TranslationValidation",
		"presets":            rows,
		"compile_ms":         plain,
		"compile_checked_ms": checked,
		"verified":           verified,
		"unverified":         unverified,
		"tv_rejects":         tvRejects,
		"replay_evals_saved": savedReplays,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_tv.json", append(artifact, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("translation validation: %.0f%% compile overhead; %d/%d passes verified; %d candidates rejected statically, %d replays saved\n",
		(checked-plain)/plain*100, verified, verified+unverified, tvRejects, savedReplays)
}

// BenchmarkSearchParallel measures the replay throughput engine: the same
// seeded GA search swept across worker counts with warm replay workers on
// and off. Every cell of the sweep must produce a byte-identical decision
// trace (the determinism guarantee); only the wall clock may differ. Rows
// with evals/sec per cell land in BENCH_parallel.json (schema v3, validated
// and regression-checked by cmd/benchlint), alongside the restore/clone/
// reset histograms that show the warm path's amortization.
//
// The subject is Fibonacci.recv — a restore-bound region (short replay over
// a small heap), the shape the warm path targets. Exec-dominated apps
// (MonteCarlo, 4inaRow) spend their eval budget inside the region itself,
// so amortizing restore moves them far less; see README "Replay throughput".
const searchParallelApp = "Fibonacci.recv"

func BenchmarkSearchParallel(b *testing.B) {
	scale := benchScale(b)
	p, opt, err := exp.PrepareApp(searchParallelApp, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	opts := scale.GA
	opts.BaselineAndroidMs = p.AndroidEval.MeanMs
	opts.BaselineO3Ms = p.O3Eval.MeanMs

	run := func(parallelism int, warm bool, parent *obs.Span) (*ga.Result, float64) {
		p.SetWarm(warm)
		o := opts
		o.Parallelism = parallelism
		o.Obs = parent
		start := time.Now()
		res := ga.Search(rand.New(rand.NewSource(benchSeed)), p, o)
		return res, time.Since(start).Seconds() * 1000
	}

	cpus := runtime.NumCPU()
	sweep := []int{1, 2, 4}
	if cpus > 4 {
		sweep = append(sweep, cpus)
	}

	type sweepRow struct {
		Workers     int     `json:"workers"`
		Warm        bool    `json:"warm"`
		Ms          float64 `json:"ms"`
		Evaluations int     `json:"evaluations"`
		EvalsPerSec float64 `json:"evals_per_sec"`
	}
	var rows []sweepRow
	var res *ga.Result
	var col *obs.Collect
	var reg *obs.Registry
	for i := 0; i < b.N; i++ {
		col = &obs.Collect{}
		sc := obs.New(col)
		reg = sc.Registry()
		// The replay scope records restore/clone/reset histograms for the
		// whole sweep; the last (warm, all-cores) run also carries the span
		// scope so the artifact keeps its per-generation latency rows.
		opt.Store.Obs = sc
		rows = rows[:0]
		refTrace := ""
		for _, warm := range []bool{false, true} {
			for _, w := range sweep {
				var parent *obs.Span
				instrumented := warm && w == sweep[len(sweep)-1]
				if instrumented {
					parent = sc.Start("search")
				}
				r, ms := run(w, warm, parent)
				if parent != nil {
					parent.End()
				}
				trace := r.DecisionTrace()
				if refTrace == "" {
					refTrace = trace
				} else if trace != refTrace {
					b.Fatalf("search diverged at workers=%d warm=%v", w, warm)
				}
				rows = append(rows, sweepRow{
					Workers:     w,
					Warm:        warm,
					Ms:          ms,
					Evaluations: r.Stats.Evaluations,
					EvalsPerSec: float64(r.Stats.Evaluations) / (ms / 1000),
				})
				if instrumented {
					res = r
				}
			}
		}
		opt.Store.Obs = nil
	}
	cell := func(workers int, warm bool) sweepRow {
		for _, r := range rows {
			if r.Workers == workers && r.Warm == warm {
				return r
			}
		}
		b.Fatalf("missing sweep cell workers=%d warm=%v", workers, warm)
		return sweepRow{}
	}
	maxW := sweep[len(sweep)-1]
	coldPar, warmPar := cell(maxW, false), cell(maxW, true)
	warmSpeedup := coldPar.Ms / warmPar.Ms
	b.ReportMetric(cell(1, false).Ms, "cold-serial-ms")
	b.ReportMetric(coldPar.Ms, "cold-parallel-ms")
	b.ReportMetric(warmPar.Ms, "warm-parallel-ms")
	b.ReportMetric(warmSpeedup, "warm-speedup")
	b.ReportMetric(warmPar.EvalsPerSec, "evals/sec")

	type genRow struct {
		Gen       int     `json:"gen"`
		Evals     int     `json:"evals"`
		CacheHits int     `json:"cache_hits"`
		P50Ms     float64 `json:"eval_p50_ms"`
		P99Ms     float64 `json:"eval_p99_ms"`
		BestSpeed float64 `json:"best_speedup"`
	}
	var gens []genRow
	for _, sd := range col.ByName("ga.generation") {
		gens = append(gens, genRow{
			Gen:       int(obs.Num(sd.Attrs, "gen")),
			Evals:     int(obs.Num(sd.Attrs, "evals")),
			CacheHits: int(obs.Num(sd.Attrs, "cache_hits")),
			P50Ms:     obs.Num(sd.Attrs, "eval_p50_ms"),
			P99Ms:     obs.Num(sd.Attrs, "eval_p99_ms"),
			BestSpeed: obs.Num(sd.Attrs, "best_speedup"),
		})
	}
	evalHist := reg.Histogram("ga.eval_ms")
	restoreHist := reg.Histogram("replay.restore_ms")
	cloneHist := reg.Histogram("replay.clone_ms")
	resetHist := reg.Histogram("replay.reset_ms")

	artifact, err := json.MarshalIndent(map[string]any{
		"schema_version":  3,
		"benchmark":       "SearchParallel",
		"app":             searchParallelApp,
		"scale":           scale.Name,
		"max_workers":     maxW,
		"rows":            rows,
		"warm_speedup":    warmSpeedup,
		"evaluations":     res.Stats.Evaluations,
		"cache_hits":      res.Stats.CacheHits,
		"considered":      res.Stats.Considered,
		"saved_replay_ms": res.Stats.SavedReplayMs,
		"eval_p50_ms":     evalHist.Quantile(0.50),
		"eval_p99_ms":     evalHist.Quantile(0.99),
		"restore_p50_ms":  restoreHist.Quantile(0.50),
		"clone_p50_ms":    cloneHist.Quantile(0.50),
		"reset_p50_ms":    resetHist.Quantile(0.50),
		"template_builds": reg.Counter("replay.template_builds").Value(),
		"warm_runs":       reg.Counter("replay.warm_runs").Value(),
		"generations":     gens,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(artifact, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("search sweep (workers × warm):\n")
	for _, r := range rows {
		fmt.Printf("  workers=%-2d warm=%-5v %8.0f ms  %6.1f evals/sec\n", r.Workers, r.Warm, r.Ms, r.EvalsPerSec)
	}
	fmt.Printf("warm speedup at %d workers: %.2fx; restore p50 %.3f ms vs clone p50 %.3f ms, reset p50 %.3f ms\n",
		maxW, warmSpeedup, restoreHist.Quantile(0.5), cloneHist.Quantile(0.5), resetHist.Quantile(0.5))
}

// BenchmarkSnapshotStore measures the content-addressed snapshot store
// (DESIGN.md §10) against the legacy gob+gzip blob on a multi-capture
// store — the §3.2 storage budget next to Fig. 11 — plus save/load/
// materialize latency and the corruption-recovery rate of the record
// format. Results land in BENCH_store.json (schema checked by
// `storelint -validate-bench`).
func BenchmarkSnapshotStore(b *testing.B) {
	const captures = 4
	store, err := benchCaptureStore(captures)
	if err != nil {
		b.Fatal(err)
	}
	var rawBytes int64
	for _, sn := range store.Snapshots {
		rawBytes += int64(len(sn.Pages)) * 4096
	}
	rawBytes += int64(len(store.BootPages)) * 4096

	dir := b.TempDir()
	legacyPath := dir + "/store.gob.gz"
	casPath := dir + "/store.cas"

	var saveMs, loadMs, matMs float64
	var legacyBytes, casBytes int64
	var st capture.SaveStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		os.Remove(legacyPath)
		os.Remove(casPath)
		if err := store.SaveLegacy(legacyPath); err != nil {
			b.Fatal(err)
		}
		legacyBytes, _ = capture.DiskSize(legacyPath)

		t0 := time.Now()
		st, err = store.Persist(casPath)
		if err != nil {
			b.Fatal(err)
		}
		saveMs = time.Since(t0).Seconds() * 1000
		casBytes, _ = capture.DiskSize(casPath)

		t0 = time.Now()
		loaded, err := capture.Load(casPath, nil)
		if err != nil {
			b.Fatal(err)
		}
		loadMs = time.Since(t0).Seconds() * 1000
		t0 = time.Now()
		for _, sn := range loaded.Snapshots {
			if err := sn.EnsurePages(); err != nil {
				b.Fatal(err)
			}
		}
		if err := loaded.EnsureBoot(); err != nil {
			b.Fatal(err)
		}
		matMs = time.Since(t0).Seconds() * 1000
		if len(loaded.Snapshots) != captures {
			b.Fatalf("%d snapshots after load", len(loaded.Snapshots))
		}
	}
	b.StopTimer()

	if casBytes >= legacyBytes {
		b.Fatalf("castore (%d B) did not beat the legacy blob (%d B)", casBytes, legacyBytes)
	}

	// Corruption trials: flip one bit past the header at a seeded offset and
	// reload. Recovered means the load returns (no crash), at least one
	// snapshot survives, and every surviving snapshot materializes with its
	// checksums intact.
	const trials = 20
	pristine, err := os.ReadFile(casPath)
	if err != nil {
		b.Fatal(err)
	}
	trialPath := dir + "/trial.cas"
	rng := rand.New(rand.NewSource(benchSeed))
	recovered := 0
	for i := 0; i < trials; i++ {
		data := append([]byte(nil), pristine...)
		off := 5 + rng.Intn(len(data)-5)
		data[off] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(trialPath, data, 0o644); err != nil {
			b.Fatal(err)
		}
		loaded, err := capture.Load(trialPath, nil)
		if err != nil {
			continue
		}
		ok := len(loaded.Snapshots) > 0
		for _, sn := range loaded.Snapshots {
			if sn.EnsurePages() != nil {
				ok = false
			}
		}
		if ok {
			recovered++
		}
	}
	recoveryRate := float64(recovered) / float64(trials)

	// Torn-tail trial: cut the file mid-record; the load must roll back to a
	// consistent committed state (here: the index fallback still presents
	// every intact manifest).
	torn := append([]byte(nil), pristine[:len(pristine)-7]...)
	if err := os.WriteFile(trialPath, torn, 0o644); err != nil {
		b.Fatal(err)
	}
	tornRecovered := false
	if loaded, err := capture.Load(trialPath, nil); err == nil && len(loaded.Snapshots) == captures {
		tornRecovered = true
		for _, sn := range loaded.Snapshots {
			if sn.EnsurePages() != nil {
				tornRecovered = false
			}
		}
	}

	b.ReportMetric(float64(legacyBytes)/float64(captures), "legacy-B/capture")
	b.ReportMetric(float64(casBytes)/float64(captures), "castore-B/capture")
	b.ReportMetric(st.DedupRatio(), "dedup-x")
	b.ReportMetric(recoveryRate, "recovery-rate")

	artifact, err := json.MarshalIndent(map[string]any{
		"schema_version":      1,
		"benchmark":           "SnapshotStore",
		"captures":            captures,
		"raw_page_bytes":      rawBytes,
		"legacy_bytes":        legacyBytes,
		"castore_bytes":       casBytes,
		"dedup_ratio":         st.DedupRatio(),
		"chunks_unique":       st.ChunksWritten,
		"chunks_reused":       st.ChunksReused,
		"save_ms":             saveMs,
		"load_ms":             loadMs,
		"materialize_ms":      matMs,
		"corruption_trials":   trials,
		"recovery_rate":       recoveryRate,
		"torn_tail_recovered": tornRecovered,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := castore.ValidateBenchJSON(artifact); err != nil {
		b.Fatalf("emitted artifact fails own schema: %v", err)
	}
	if err := os.WriteFile("BENCH_store.json", append(artifact, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("snapshot store: %d captures, raw %.2f MB; legacy %.2f MB -> castore %.2f MB (%.2fx dedup); save %.1f ms, load %.1f ms, materialize %.1f ms; corruption recovery %d/%d, torn tail recovered: %v\n",
		captures, float64(rawBytes)/(1<<20), float64(legacyBytes)/(1<<20), float64(casBytes)/(1<<20),
		st.DedupRatio(), saveMs, loadMs, matMs, recovered, trials, tornRecovered)
}

// benchCaptureStore captures n snapshots of one app's hot region with
// different arguments into a single store — the multi-capture shape where
// cross-snapshot dedup matters (the region touches mostly the same pages
// every entry).
func benchCaptureStore(n int) (*capture.Store, error) {
	prog, err := minic.CompileSource("bench", `
global int[] data;
func setup() { data = new int[65536]; for (int i = 0; i < len(data); i = i + 1) { data[i] = i * 2654435761; } }
func hot(int n) int {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + data[i % len(data)]; }
	data[0] = s;
	return s;
}
func main() int { setup(); return hot(100); }`)
	if err != nil {
		return nil, err
	}
	proc := rt.NewProcess(prog, rt.Config{})
	env := interp.NewEnv(proc)
	env.MaxCycles = 10_000_000_000
	setupID, _ := prog.MethodByName("setup")
	hotID, _ := prog.MethodByName("hot")
	if _, err := env.Call(setupID, nil); err != nil {
		return nil, err
	}
	store := capture.NewStore()
	dev := device.New(benchSeed)
	for i := 0; i < n; i++ {
		arg := uint64(5000 + 100*i)
		if _, err := capture.Capture(proc, dev, store, hotID, []uint64{arg}, 0, func() error {
			_, err := env.Call(hotID, []uint64{arg})
			return err
		}); err != nil {
			return nil, err
		}
	}
	return store, nil
}
