package replayopt

// Differential safety net for the value-range passes (§3.5): appending each
// range pass — alone and all together — to every preset pipeline must leave
// every evaluation app's observable result identical, with the strict
// translation validator attached and earning zero Rejected verdicts. This is
// the whole-program complement of the per-pass progen fuzzing cmd/tvlint
// runs (tv.Differential drills lir.PassNames(), which the registration
// assertion below ties to the new passes).

import (
	"testing"

	"replayopt/internal/apps"
	"replayopt/internal/core"
	"replayopt/internal/lir"
	"replayopt/internal/lir/tv"
	"replayopt/internal/machine"
	"replayopt/internal/sa"
	"replayopt/internal/sa/vra"
)

var rangePassNames = []string{"rangecheckelim", "rangebranch", "rangestrength"}

// TestRangePassesInFuzzerPool: tv.Differential (the tvlint fuzzer) drills
// lir.PassNames() by default, so registration is what opts the range passes
// into that coverage. A rename that silently drops one from the registry
// would otherwise drop it from the fuzzer too.
func TestRangePassesInFuzzerPool(t *testing.T) {
	registered := map[string]bool{}
	for _, n := range lir.PassNames() {
		registered[n] = true
	}
	for _, n := range rangePassNames {
		if !registered[n] {
			t.Errorf("pass %s not in lir.PassNames(); tvlint's fuzzer would skip it", n)
		}
	}
}

func TestRangePassDifferential(t *testing.T) {
	presets := []struct {
		name string
		cfg  func() lir.Config
	}{
		{"O1", lir.O1}, {"O2", lir.O2}, {"O3", lir.O3},
	}
	// Each pass alone, then all three (the catalog's cleanup padding can
	// select them together).
	variants := [][]string{
		{"rangecheckelim"}, {"rangebranch"}, {"rangestrength"}, rangePassNames,
	}
	specs := append(apps.All(), apps.WitnessSpec())
	if testing.Short() {
		// Kernel, interactive, and diagnostic representatives.
		short := map[string]bool{"SOR": true, "MaterialLife": true, "WitnessFilter": true}
		var keep []apps.Spec
		for _, s := range specs {
			if short[s.Name] {
				keep = append(keep, s)
			}
		}
		specs = keep
		presets = presets[:1]
	}

	run := func(app *core.App, code *machine.Program) (uint64, error) {
		_, x := app.NewProcessAndExec(code)
		x.MaxCycles = 50_000_000_000
		return x.Call(app.Prog.Entry, nil)
	}

	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			app, err := apps.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			static := sa.Analyze(app.Prog)
			vra.Attach(static)
			for _, pre := range presets {
				base, err := lir.Compile(app.Prog, nil, pre.cfg(), nil, static)
				if err != nil {
					t.Fatalf("%s baseline compile: %v", pre.name, err)
				}
				want, werr := run(app, base)
				for _, names := range variants {
					cfg := pre.cfg()
					for _, n := range names {
						cfg.Passes = append(cfg.Passes, lir.PassSpec{Name: n})
					}
					chk := tv.NewChecker(tv.Options{Reject: true, Strict: true})
					cfg.Check = chk
					cfg.CheckEach = true
					code, err := lir.Compile(app.Prog, nil, cfg, nil, static)
					if err != nil {
						t.Fatalf("%s+%v compile: %v", pre.name, names, err)
					}
					if _, _, rejected := chk.Counts(); rejected != 0 {
						t.Errorf("%s+%v: %d tv rejections", pre.name, names, rejected)
					}
					got, gerr := run(app, code)
					if (gerr != nil) != (werr != nil) {
						t.Fatalf("%s+%v: trap behaviour diverged: base err %v, opt err %v",
							pre.name, names, werr, gerr)
					}
					if got != want {
						t.Errorf("%s+%v: result %d, baseline %d",
							pre.name, names, int64(got), int64(want))
					}
				}
			}
		})
	}
}
